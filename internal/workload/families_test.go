package workload

import (
	"reflect"
	"testing"

	"heterogen/internal/spec"
)

func testLayout() Layout { return Layout{BigCores: 2, TinyCores: 6} }

// TestFamiliesDeterministic pins trace generation for every stress family:
// same parameters, same traces.
func TestFamiliesDeterministic(t *testing.T) {
	for _, p := range Families() {
		a := Generate(p, testLayout())
		b := Generate(p, testLayout())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: generation is not deterministic", p.Name)
		}
	}
}

// TestFamiliesResolvable checks the families are reachable through
// BenchmarkByName alongside the 13 benchmarks, with distinct names.
func TestFamiliesResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Benchmarks() {
		seen[p.Name] = true
	}
	for _, p := range Families() {
		if seen[p.Name] {
			t.Errorf("family %s collides with another parameter point", p.Name)
		}
		seen[p.Name] = true
		got, err := BenchmarkByName(p.Name)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
		} else if !reflect.DeepEqual(got, p) {
			t.Errorf("%s: BenchmarkByName returned different parameters", p.Name)
		}
	}
}

// sharedOps partitions one trace's memory ops into shared-region loads and
// stores (address below the private base).
func sharedOps(tr CoreTrace) (loads, stores []spec.Addr) {
	for _, op := range tr {
		if op.Req.Addr >= 4096 {
			continue
		}
		switch op.Req.Op {
		case spec.OpLoad:
			loads = append(loads, op.Req.Addr)
		case spec.OpStore:
			stores = append(stores, op.Req.Addr)
		}
	}
	return
}

// TestFalseSharingStorm checks the fs-storm family's defining statistic:
// the majority of shared stores land on the contended hot set.
func TestFalseSharingStorm(t *testing.T) {
	p, err := BenchmarkByName("fs-storm")
	if err != nil {
		t.Fatal(err)
	}
	wl := Generate(p, testLayout())
	hot, total := 0, 0
	for _, tr := range wl.Traces {
		_, stores := sharedOps(tr)
		for _, a := range stores {
			total++
			if int(a) < hotBlocks {
				hot++
			}
		}
	}
	if total == 0 {
		t.Fatal("no shared stores generated")
	}
	if frac := float64(hot) / float64(total); frac < 0.5 {
		t.Errorf("hot-set store fraction %.2f, want ≥ 0.5 (of %d shared stores)", frac, total)
	}
}

// TestProdConsChain checks the producer/consumer family's data-flow shape:
// big cores write the chain half and read the result half; tiny cores do
// the opposite, behind acquire/release pairs.
func TestProdConsChain(t *testing.T) {
	p, err := BenchmarkByName("prodcons-chain")
	if err != nil {
		t.Fatal(err)
	}
	l := testLayout()
	wl := Generate(p, l)
	half := spec.Addr(p.SharedBlocks / 2)
	for c, tr := range wl.Traces {
		big := c < l.BigCores
		loads, stores := sharedOps(tr)
		syncs := 0
		for _, op := range tr {
			if op.Req.Op == spec.OpAcquire || op.Req.Op == spec.OpRelease {
				syncs++
			}
		}
		inChain := func(as []spec.Addr) int {
			n := 0
			for _, a := range as {
				if a < half {
					n++
				}
			}
			return n
		}
		if big {
			if len(stores) == 0 || inChain(stores) != len(stores) {
				t.Errorf("core %d (big): %d/%d shared stores in chain region", c, inChain(stores), len(stores))
			}
			if len(loads) == 0 || inChain(loads) != 0 {
				t.Errorf("core %d (big): %d/%d shared loads in chain region, want 0", c, inChain(loads), len(loads))
			}
			if syncs != 0 {
				t.Errorf("core %d (big): %d sync ops, want 0", c, syncs)
			}
		} else {
			if len(loads) == 0 || inChain(loads) != len(loads) {
				t.Errorf("core %d (tiny): %d/%d shared loads in chain region", c, inChain(loads), len(loads))
			}
			if inChain(stores) != 0 {
				t.Errorf("core %d (tiny): %d shared stores in chain region, want 0", c, inChain(stores))
			}
			if syncs == 0 {
				t.Errorf("core %d (tiny): no acquire/release pairs", c)
			}
		}
	}
}

// TestGPUBurstPhases checks the GPU-phase family: tiny cores write only
// their own stripe in dense bursts and publish with a release; big cores
// only read the shared region.
func TestGPUBurstPhases(t *testing.T) {
	p, err := BenchmarkByName("gpu-phases")
	if err != nil {
		t.Fatal(err)
	}
	l := testLayout()
	wl := Generate(p, l)
	stripe := p.SharedBlocks / l.TinyCores
	for c, tr := range wl.Traces {
		big := c < l.BigCores
		loads, stores := sharedOps(tr)
		if big {
			if len(stores) != 0 {
				t.Errorf("core %d (big): %d shared stores, want 0", c, len(stores))
			}
			if len(loads) == 0 {
				t.Errorf("core %d (big): no shared loads", c)
			}
			continue
		}
		base := spec.Addr((c - l.BigCores) * stripe)
		for _, a := range stores {
			if a < base || a >= base+spec.Addr(stripe) {
				t.Errorf("core %d (tiny): store to %d outside stripe [%d,%d)", c, a, base, base+spec.Addr(stripe))
				break
			}
		}
		// Bursts are dense: the longest consecutive shared-store run should
		// reach the configured burst length.
		run, best := 0, 0
		releases := 0
		for _, op := range tr {
			switch {
			case op.Req.Op == spec.OpStore && op.Req.Addr < 4096:
				run++
				if run > best {
					best = run
				}
			case op.Req.Op == spec.OpRelease:
				releases++
				run = 0
			default:
				run = 0
			}
		}
		if best < 4 {
			t.Errorf("core %d (tiny): longest store burst %d, want ≥ 4", c, best)
		}
		if releases == 0 {
			t.Errorf("core %d (tiny): no releases after bursts", c)
		}
	}
}

// TestBigsetWorkingSet checks the large-working-set family actually
// widens the address footprint past every Figure 10 point.
func TestBigsetWorkingSet(t *testing.T) {
	p, err := BenchmarkByName("bigset-mix")
	if err != nil {
		t.Fatal(err)
	}
	wl := Generate(p, testLayout())
	addrs := map[spec.Addr]bool{}
	for _, tr := range wl.Traces {
		for _, op := range tr {
			if op.Req.Addr < 4096 && (op.Req.Op == spec.OpLoad || op.Req.Op == spec.OpStore) {
				addrs[op.Req.Addr] = true
			}
		}
	}
	if len(addrs) < 128 {
		t.Errorf("bigset-mix touches %d distinct shared blocks, want ≥ 128", len(addrs))
	}
}
