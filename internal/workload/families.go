package workload

import "heterogen/internal/spec"

// Trace-generation patterns. The zero value selects the mixed
// statistical generator the 13 Figure 10 benchmark points use; the others
// are structured families exercising sharing shapes the mixed generator
// cannot express.
const (
	// PatternMixed is the default statistical mix (reads/writes/bursts
	// drawn independently per op).
	PatternMixed = ""
	// PatternProdCons builds producer/consumer chains: the big cluster
	// streams writes through a chain region that the tiny cluster reads
	// behind an acquire, with results flowing back through a second region.
	// Nearly every shared read is a communicating read.
	PatternProdCons = "prodcons"
	// PatternGPUBurst builds bursty GPU-style phases: the tiny cluster
	// alternates long private compute phases with dense store bursts to a
	// per-core stripe of the shared region (release at the end of each
	// burst), while the big cluster consumes the produced stripes.
	PatternGPUBurst = "gpuburst"
)

// Families returns the stress trace families added on top of the 13
// benchmark points: targeted corners (false sharing, producer/consumer
// chains, bursty GPU-style phases, large multi-address working sets) that
// widen the §VIII sweep beyond the Figure 10 mix. Each is a Params point
// like the benchmarks, usable anywhere a benchmark is.
func Families() []Params {
	base := Params{
		OpsPerCore: 220, ReadFrac: 0.7, SharedFrac: 0.3,
		SharedBlocks: 64, PrivateBlocks: 48,
		CommReadFrac: 0.3, WriteBurst: 1, FalseSharing: 0.05,
		SyncPeriod: 16, MaxGap: 6,
	}
	mk := func(name string, seed int64, mut func(*Params)) Params {
		p := base
		p.Name = name
		p.Seed = seed
		mut(&p)
		return p
	}
	return []Params{
		// Heavy false sharing: most shared writes land on a tiny contended
		// hot set, in bursts. The handshake variants keep a contended block
		// home long enough to absorb a burst — HCC's strongest case.
		mk("fs-storm", 101, func(p *Params) {
			p.FalseSharing = 0.85
			p.WriteBurst = 6
			p.ReadFrac = 0.4
			p.SharedFrac = 0.5
			p.SharedBlocks = 16
		}),
		// Producer/consumer chains: cross-cluster data flow dominates, so
		// almost every shared access communicates — where eschewing
		// handshakes pays most.
		mk("prodcons-chain", 202, func(p *Params) {
			p.Pattern = PatternProdCons
			p.SharedBlocks = 96
			p.WriteBurst = 8
			p.SharedFrac = 0.55
			p.SyncPeriod = 24
			p.OpsPerCore = 260
		}),
		// Migratory read-modify-write: singleton writes and predominantly
		// cross-cluster reads bounce each block between clusters, so every
		// transfer is handshake-exposed.
		mk("migratory-rmw", 505, func(p *Params) {
			p.SharedFrac = 0.7
			p.ReadFrac = 0.5
			p.CommReadFrac = 0.95
			p.WriteBurst = 1
			p.FalseSharing = 0
			p.SharedBlocks = 24
			p.SyncPeriod = 40
			p.OpsPerCore = 260
		}),
		// GPU-style phases: the tiny cluster streams long store bursts into
		// private stripes (no inter-core contention inside a phase), the big
		// cluster reads the results.
		mk("gpu-phases", 303, func(p *Params) {
			p.Pattern = PatternGPUBurst
			p.SharedBlocks = 128
			p.WriteBurst = 24
			p.SharedFrac = 0.5
			p.SyncPeriod = 32
			p.OpsPerCore = 260
			p.MaxGap = 10
		}),
		// Large multi-address working set: an order of magnitude more
		// shared blocks than any Figure 10 point plus big private regions,
		// stressing L1 capacity management and directory occupancy.
		mk("bigset-mix", 404, func(p *Params) {
			p.SharedBlocks = 512
			p.PrivateBlocks = 192
			p.SharedFrac = 0.45
			p.CommReadFrac = 0.6
			p.ReadFrac = 0.75
			p.OpsPerCore = 300
		}),
	}
}

// generateProdCons emits producer/consumer chain traces (PatternProdCons).
// The shared region splits into a chain half (big cluster writes, tiny
// cluster reads) and a result half flowing the other way. WriteBurst is
// the chain-segment length; SyncPeriod paces the tiny cluster's
// acquire/release pairs.
func generateProdCons(p Params, l Layout, wl *Workload, rng rngSource) {
	n := l.BigCores + l.TinyCores
	shared := p.SharedBlocks
	if shared < 8 {
		shared = 8
	}
	half := shared / 2
	chain := func(i int) spec.Addr { return spec.Addr(i % half) }
	result := func(i int) spec.Addr { return spec.Addr(half + i%(shared-half)) }
	seg := p.WriteBurst
	if seg < 2 {
		seg = 2
	}

	for c := 0; c < n; c++ {
		big := c < l.BigCores
		privBase := spec.Addr(4096 + c*p.PrivateBlocks)
		var tr CoreTrace
		cursor := rng.Intn(half) // chain position, per-core phase offset
		sharedSince := 0
		emit := func(req spec.CoreReq) {
			tr = append(tr, TraceOp{Gap: rng.Intn(p.MaxGap + 1), Req: req})
		}
		for len(tr) < p.OpsPerCore {
			if rng.Float64() >= p.SharedFrac {
				a := privBase + spec.Addr(rng.Intn(p.PrivateBlocks))
				if rng.Float64() < 0.8 {
					emit(spec.CoreReq{Op: spec.OpLoad, Addr: a})
				} else {
					emit(spec.CoreReq{Op: spec.OpStore, Addr: a, Value: rng.Intn(64)})
				}
				continue
			}
			sharedSince++
			if big {
				// Producer: stream a chain segment, then check one result.
				for i := 0; i < seg && len(tr) < p.OpsPerCore; i++ {
					emit(spec.CoreReq{Op: spec.OpStore, Addr: chain(cursor), Value: rng.Intn(64)})
					cursor++
				}
				emit(spec.CoreReq{Op: spec.OpLoad, Addr: result(rng.Intn(shared - half))})
				continue
			}
			// Consumer: acquire, read a chain segment, occasionally publish
			// a result.
			if p.SyncPeriod > 0 && sharedSince%p.SyncPeriod == 0 {
				emit(spec.CoreReq{Op: spec.OpRelease})
				emit(spec.CoreReq{Op: spec.OpAcquire})
			}
			for i := 0; i < seg && len(tr) < p.OpsPerCore; i++ {
				emit(spec.CoreReq{Op: spec.OpLoad, Addr: chain(cursor)})
				cursor++
			}
			if rng.Float64() < 0.25 {
				emit(spec.CoreReq{Op: spec.OpStore, Addr: result(rng.Intn(shared - half)), Value: rng.Intn(64)})
			}
		}
		wl.Traces[c] = tr
	}
}

// generateGPUBurst emits bursty GPU-style phase traces (PatternGPUBurst).
// Tiny cores cycle through compute phases (private accesses, long gaps)
// and store bursts to a per-core stripe of the shared region, releasing at
// each burst's end; big cores read completed stripes (communicating
// reads). WriteBurst is the burst length, SyncPeriod the compute-phase
// length in ops.
func generateGPUBurst(p Params, l Layout, wl *Workload, rng rngSource) {
	n := l.BigCores + l.TinyCores
	shared := p.SharedBlocks
	if shared < n {
		shared = n
	}
	stripe := shared / maxInt(l.TinyCores, 1)
	if stripe < 1 {
		stripe = 1
	}
	burst := maxInt(p.WriteBurst, 4)
	phase := maxInt(p.SyncPeriod, 8)

	for c := 0; c < n; c++ {
		big := c < l.BigCores
		privBase := spec.Addr(4096 + c*p.PrivateBlocks)
		var tr CoreTrace
		emit := func(req spec.CoreReq) {
			tr = append(tr, TraceOp{Gap: rng.Intn(p.MaxGap + 1), Req: req})
		}
		if big {
			// Consumer: mostly reads across all stripes, some private work.
			for len(tr) < p.OpsPerCore {
				if rng.Float64() >= p.SharedFrac {
					a := privBase + spec.Addr(rng.Intn(p.PrivateBlocks))
					emit(spec.CoreReq{Op: spec.OpLoad, Addr: a})
					continue
				}
				emit(spec.CoreReq{Op: spec.OpLoad, Addr: spec.Addr(rng.Intn(shared))})
			}
			wl.Traces[c] = tr
			continue
		}
		stripeBase := ((c - l.BigCores) % maxInt(l.TinyCores, 1)) * stripe
		for len(tr) < p.OpsPerCore {
			// Compute phase: private ops with long gaps.
			for i := 0; i < phase && len(tr) < p.OpsPerCore; i++ {
				a := privBase + spec.Addr(rng.Intn(p.PrivateBlocks))
				if rng.Float64() < 0.7 {
					emit(spec.CoreReq{Op: spec.OpLoad, Addr: a})
				} else {
					emit(spec.CoreReq{Op: spec.OpStore, Addr: a, Value: rng.Intn(64)})
				}
			}
			// Store burst into this core's stripe, then publish.
			for i := 0; i < burst && len(tr) < p.OpsPerCore; i++ {
				a := spec.Addr(stripeBase + i%stripe)
				emit(spec.CoreReq{Op: spec.OpStore, Addr: a, Value: rng.Intn(64)})
			}
			if len(tr) < p.OpsPerCore {
				emit(spec.CoreReq{Op: spec.OpRelease})
			}
		}
		wl.Traces[c] = tr
	}
}

// rngSource is the slice of *rand.Rand the generators use; an interface so
// the pattern generators state their needs explicitly.
type rngSource interface {
	Intn(n int) int
	Float64() float64
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
