package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"heterogen/internal/spec"
)

func TestBenchmarkNames(t *testing.T) {
	want := []string{
		"cilk5-cs", "cilk5-lu", "cilk5-mm", "cilk5-mt", "cilk5-nq",
		"ligra-bc", "ligra-bf", "ligra-bfs", "ligra-bfsbv", "ligra-cc",
		"ligra-mis", "ligra-radii", "ligra-tc",
	}
	got := Benchmarks()
	if len(got) != len(want) {
		t.Fatalf("%d benchmarks, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.Name != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestCommunicatingReadParameters(t *testing.T) {
	// The paper's narrative: nq and lu spend significant time on
	// communicating reads; bf and bfsbv are write-burst/false-sharing
	// heavy. The parameter points must reflect that.
	byName := map[string]Params{}
	for _, p := range Benchmarks() {
		byName[p.Name] = p
	}
	if byName["cilk5-nq"].CommReadFrac <= byName["ligra-bf"].CommReadFrac {
		t.Error("nq should be more communicating-read-heavy than bf")
	}
	if byName["ligra-bf"].WriteBurst <= byName["cilk5-nq"].WriteBurst {
		t.Error("bf should be more write-bursty than nq")
	}
	if byName["ligra-bfsbv"].FalseSharing <= byName["cilk5-lu"].FalseSharing {
		t.Error("bfsbv should have more false sharing than lu")
	}
}

// genParams builds random valid parameter points for property tests.
type genParams struct{ p Params }

func (genParams) Generate(r *rand.Rand, _ int) reflect.Value {
	p := Params{
		Name:          "prop",
		OpsPerCore:    20 + r.Intn(200),
		ReadFrac:      r.Float64(),
		SharedFrac:    r.Float64(),
		SharedBlocks:  8 + r.Intn(64),
		PrivateBlocks: 4 + r.Intn(64),
		CommReadFrac:  r.Float64(),
		WriteBurst:    1 + r.Intn(6),
		FalseSharing:  r.Float64() * 0.5,
		SyncPeriod:    4 + r.Intn(32),
		MaxGap:        r.Intn(10),
		Seed:          r.Int63(),
	}
	return reflect.ValueOf(genParams{p})
}

// TestPropTraceShape: every generated trace meets the structural
// contract — within the op budget (plus sync overhead), valid ops only,
// private regions disjoint per core.
func TestPropTraceShape(t *testing.T) {
	l := Layout{BigCores: 2, TinyCores: 6}
	f := func(g genParams) bool {
		wl := Generate(g.p, l)
		if len(wl.Traces) != 8 {
			return false
		}
		for c, tr := range wl.Traces {
			if len(tr) < g.p.OpsPerCore || len(tr) > g.p.OpsPerCore+2*g.p.OpsPerCore/max(1, g.p.SyncPeriod)+4 {
				return false
			}
			for _, op := range tr {
				switch op.Req.Op {
				case spec.OpLoad, spec.OpStore:
					a := int(op.Req.Addr)
					shared := a >= 0 && a < maxShared(g.p)
					private := a >= 4096+c*g.p.PrivateBlocks && a < 4096+(c+1)*g.p.PrivateBlocks
					if !shared && !private {
						return false // touched another core's region
					}
				case spec.OpAcquire, spec.OpRelease:
					if c < l.BigCores {
						return false // sync only on the RC cluster
					}
				default:
					return false
				}
				if op.Gap < 0 || op.Gap > g.p.MaxGap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func maxShared(p Params) int {
	s := p.SharedBlocks
	if s < 2*hotBlocks {
		s = 2 * hotBlocks
	}
	return s
}

// TestPropDeterministic: identical parameters generate identical traces.
func TestPropDeterministic(t *testing.T) {
	l := Layout{BigCores: 1, TinyCores: 3}
	f := func(g genParams) bool {
		a := Generate(g.p, l)
		b := Generate(g.p, l)
		for i := range a.Traces {
			if len(a.Traces[i]) != len(b.Traces[i]) {
				return false
			}
			for j := range a.Traces[i] {
				if a.Traces[i][j] != b.Traces[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScaleBounds(t *testing.T) {
	p, _ := BenchmarkByName("ligra-tc")
	wl := Generate(p, Layout{BigCores: 1, TinyCores: 1})
	for _, frac := range []float64{0.01, 0.5, 0.99} {
		s := wl.Scale(frac)
		for i := range s.Traces {
			if len(s.Traces[i]) < 4 || len(s.Traces[i]) > len(wl.Traces[i]) {
				t.Errorf("scale %f trace %d length %d", frac, i, len(s.Traces[i]))
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
