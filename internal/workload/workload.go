// Package workload generates synthetic per-core memory traces modeled on
// the 13 fine-grained-synchronization benchmarks of the HCC evaluation
// (cilk5-{cs,lu,mm,mt,nq}, ligra-{bc,bf,bfs,bfsbv,cc,mis,radii,tc}).
//
// We cannot run the Cilk/Ligra binaries; instead each benchmark is a
// parameter point controlling the access properties that drive the §VIII
// comparison: the fraction of communicating reads (reads of blocks recently
// written by the other cluster — where HeteroGen's eschewed handshakes pay
// off), write burstiness and false sharing (where handshakes keep a block
// home long enough to absorb a burst), synchronization rate, sharing
// degree and working-set size.
package workload

import (
	"fmt"
	"math/rand"

	"heterogen/internal/spec"
)

// TraceOp is one trace entry: Gap non-memory cycles, then the request.
type TraceOp struct {
	Gap int
	Req spec.CoreReq
}

// CoreTrace is one core's operation stream.
type CoreTrace []TraceOp

// Workload is a named set of per-core traces.
type Workload struct {
	Name   string
	Traces []CoreTrace
}

// Params parameterizes a benchmark's synthetic behavior.
type Params struct {
	Name string
	// OpsPerCore is the memory-operation count per core.
	OpsPerCore int
	// ReadFrac is the fraction of shared accesses that are reads.
	ReadFrac float64
	// SharedFrac is the fraction of accesses touching shared blocks.
	SharedFrac float64
	// SharedBlocks sizes the shared region.
	SharedBlocks int
	// PrivateBlocks sizes each core's private working set.
	PrivateBlocks int
	// CommReadFrac is the fraction of shared reads directed at blocks the
	// *other* cluster predominantly writes (communicating reads).
	CommReadFrac float64
	// WriteBurst is the run length of consecutive stores to one block.
	WriteBurst int
	// FalseSharing is the probability a shared write targets one of a few
	// hot contended blocks.
	FalseSharing float64
	// SyncPeriod inserts an acquire/release pair on the RC cluster every
	// so many shared accesses (fine-grained synchronization).
	SyncPeriod int
	// MaxGap bounds the random non-memory gap between operations.
	MaxGap int
	// Seed makes generation deterministic.
	Seed int64
	// Pattern selects the trace-generation scheme (PatternMixed,
	// PatternProdCons, PatternGPUBurst). The zero value is the mixed
	// statistical generator of the 13 benchmark points.
	Pattern string
}

// Benchmarks returns the 13 HCC benchmark parameter points.
func Benchmarks() []Params {
	base := Params{
		OpsPerCore: 220, ReadFrac: 0.7, SharedFrac: 0.3,
		SharedBlocks: 64, PrivateBlocks: 48,
		CommReadFrac: 0.3, WriteBurst: 1, FalseSharing: 0.05,
		SyncPeriod: 16, MaxGap: 6,
	}
	mk := func(name string, mut func(*Params)) Params {
		p := base
		p.Name = name
		p.Seed = int64(len(name))*7919 + 17
		mut(&p)
		return p
	}
	return []Params{
		mk("cilk5-cs", func(p *Params) { p.SharedFrac = 0.25; p.CommReadFrac = 0.35 }),
		mk("cilk5-lu", func(p *Params) { p.CommReadFrac = 0.75; p.ReadFrac = 0.8; p.SharedFrac = 0.4 }),
		mk("cilk5-mm", func(p *Params) { p.SharedFrac = 0.2; p.ReadFrac = 0.85; p.PrivateBlocks = 56 }),
		mk("cilk5-mt", func(p *Params) { p.SharedFrac = 0.22; p.CommReadFrac = 0.25 }),
		mk("cilk5-nq", func(p *Params) { p.CommReadFrac = 0.8; p.ReadFrac = 0.8; p.SharedFrac = 0.45 }),
		mk("ligra-bc", func(p *Params) { p.SharedFrac = 0.35; p.WriteBurst = 2; p.FalseSharing = 0.12 }),
		mk("ligra-bf", func(p *Params) {
			p.WriteBurst = 12
			p.FalseSharing = 0.5
			p.ReadFrac = 0.35
			p.CommReadFrac = 0.05
			p.SharedBlocks = 32
			p.MaxGap = 8
		}),
		mk("ligra-bfs", func(p *Params) { p.WriteBurst = 2; p.FalseSharing = 0.15; p.CommReadFrac = 0.3 }),
		mk("ligra-bfsbv", func(p *Params) {
			p.WriteBurst = 14
			p.FalseSharing = 0.55
			p.ReadFrac = 0.3
			p.CommReadFrac = 0.04
			p.SharedBlocks = 24
			p.MaxGap = 8
		}),
		mk("ligra-cc", func(p *Params) { p.SharedFrac = 0.4; p.WriteBurst = 2; p.FalseSharing = 0.1 }),
		mk("ligra-mis", func(p *Params) { p.SharedFrac = 0.35; p.CommReadFrac = 0.4; p.WriteBurst = 2 }),
		mk("ligra-radii", func(p *Params) { p.SharedFrac = 0.3; p.CommReadFrac = 0.45 }),
		mk("ligra-tc", func(p *Params) { p.ReadFrac = 0.9; p.SharedFrac = 0.5; p.CommReadFrac = 0.35 }),
	}
}

// BenchmarkByName returns the named parameter point, searching the 13
// benchmarks first and then the stress families.
func BenchmarkByName(name string) (Params, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range Families() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Layout describes the machine the trace targets.
type Layout struct {
	BigCores  int // cluster 0 (MESI)
	TinyCores int // cluster 1 (RCC-O / DeNovo-like)
}

// hotBlocks is the size of the falsely-shared contended set.
const hotBlocks = 4

// Generate builds the per-core traces for a benchmark on the layout.
// Address map: shared blocks occupy [0, SharedBlocks); block 0..hotBlocks-1
// are the contended set; the low half of the remainder is predominantly
// written by the big cluster, the high half by the tiny cluster (so
// "communicating reads" cross clusters). Private blocks start at 4096 +
// core*PrivateBlocks.
func Generate(p Params, l Layout) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	n := l.BigCores + l.TinyCores
	wl := &Workload{Name: p.Name, Traces: make([]CoreTrace, n)}
	switch p.Pattern {
	case PatternProdCons:
		generateProdCons(p, l, wl, rng)
		return wl
	case PatternGPUBurst:
		generateGPUBurst(p, l, wl, rng)
		return wl
	}
	shared := p.SharedBlocks
	if shared < 2*hotBlocks {
		shared = 2 * hotBlocks
	}
	half := (shared - hotBlocks) / 2
	bigRegion := func(i int) spec.Addr { return spec.Addr(hotBlocks + i%half) }
	tinyRegion := func(i int) spec.Addr { return spec.Addr(hotBlocks + half + i%half) }

	for c := 0; c < n; c++ {
		big := c < l.BigCores
		privBase := spec.Addr(4096 + c*p.PrivateBlocks)
		var tr CoreTrace
		sharedSince := 0
		emit := func(req spec.CoreReq) {
			tr = append(tr, TraceOp{Gap: rng.Intn(p.MaxGap + 1), Req: req})
		}
		for len(tr) < p.OpsPerCore {
			if rng.Float64() >= p.SharedFrac {
				// Private access: mostly reads with temporal locality.
				a := privBase + spec.Addr(rng.Intn(p.PrivateBlocks))
				if rng.Float64() < 0.8 {
					emit(spec.CoreReq{Op: spec.OpLoad, Addr: a})
				} else {
					emit(spec.CoreReq{Op: spec.OpStore, Addr: a, Value: rng.Intn(64)})
				}
				continue
			}
			sharedSince++
			if !big && p.SyncPeriod > 0 && sharedSince%p.SyncPeriod == 0 {
				// Fine-grained synchronization on the RC cluster.
				emit(spec.CoreReq{Op: spec.OpRelease})
				emit(spec.CoreReq{Op: spec.OpAcquire})
			}
			if rng.Float64() < p.ReadFrac {
				// Shared read; communicating reads target the region the
				// other cluster writes.
				var a spec.Addr
				if rng.Float64() < p.CommReadFrac {
					if big {
						a = tinyRegion(rng.Intn(half))
					} else {
						a = bigRegion(rng.Intn(half))
					}
				} else if big {
					a = bigRegion(rng.Intn(half))
				} else {
					a = tinyRegion(rng.Intn(half))
				}
				emit(spec.CoreReq{Op: spec.OpLoad, Addr: a})
				continue
			}
			// Shared write: possibly a burst, possibly to a hot
			// falsely-shared block.
			var a spec.Addr
			if rng.Float64() < p.FalseSharing {
				a = spec.Addr(rng.Intn(hotBlocks))
			} else if big {
				a = bigRegion(rng.Intn(half))
			} else {
				a = tinyRegion(rng.Intn(half))
			}
			burst := 1
			if p.WriteBurst > 1 {
				burst = 1 + rng.Intn(p.WriteBurst)
			}
			for b := 0; b < burst && len(tr) < p.OpsPerCore; b++ {
				emit(spec.CoreReq{Op: spec.OpStore, Addr: a, Value: rng.Intn(64)})
			}
		}
		wl.Traces[c] = tr
	}
	return wl
}

// Scale shrinks every trace to frac of its length (for quick tests).
func (w *Workload) Scale(frac float64) *Workload {
	if frac >= 1 {
		return w
	}
	out := &Workload{Name: w.Name, Traces: make([]CoreTrace, len(w.Traces))}
	for i, tr := range w.Traces {
		n := int(float64(len(tr)) * frac)
		if n < 4 {
			n = 4
		}
		if n > len(tr) {
			n = len(tr)
		}
		out.Traces[i] = tr[:n]
	}
	return out
}

// Stats summarizes a workload for docs output.
func (w *Workload) Stats() (ops, loads, stores, syncs int) {
	for _, tr := range w.Traces {
		for _, op := range tr {
			ops++
			switch op.Req.Op {
			case spec.OpLoad:
				loads++
			case spec.OpStore:
				stores++
			default:
				syncs++
			}
		}
	}
	return
}
