// Package benchmeta collects the runner metadata every BENCH_*.json report
// embeds — core count, GOMAXPROCS, Go toolchain and CPU model — so the
// benchmark emitters all describe the machine the same way instead of
// hand-maintaining per-file runner notes. Numbers recorded on one machine
// are only comparable to numbers recorded on a like machine; the Runner
// block is what makes that judgment possible after the fact.
package benchmeta

import (
	"os"
	"runtime"
	"strings"
)

// Runner describes the machine and toolchain a benchmark report was
// produced on. The JSON field names are the BENCH_*.json schema.
type Runner struct {
	// CPU is the processor model ("model name" from /proc/cpuinfo; empty
	// when unreadable, e.g. off Linux).
	CPU string `json:"cpu,omitempty"`
	// Cores is runtime.NumCPU at collection time.
	Cores int `json:"cores"`
	// GOMAXPROCS is the effective scheduler parallelism (it may differ
	// from Cores under the GOMAXPROCS env or in a quota-limited cgroup).
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string `json:"go_version"`
	// Note carries the benchmark-specific caveat (what the machine shape
	// means for how to read the numbers).
	Note string `json:"note,omitempty"`
}

// Collect gathers the current machine's metadata, attaching note.
func Collect(note string) Runner {
	return Runner{
		CPU:        cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note:       note,
	}
}

// cpuModel reads the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
