package benchmeta

import (
	"runtime"
	"testing"
)

func TestCollect(t *testing.T) {
	r := Collect("test note")
	if r.Cores != runtime.NumCPU() {
		t.Errorf("Cores = %d, want %d", r.Cores, runtime.NumCPU())
	}
	if r.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", r.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if r.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", r.GoVersion, runtime.Version())
	}
	if r.Note != "test note" {
		t.Errorf("Note = %q", r.Note)
	}
	// CPU is best-effort (empty off Linux); on this Linux runner the
	// cpuinfo model name must surface.
	if runtime.GOOS == "linux" && r.CPU == "" {
		t.Error("CPU model empty on a Linux runner")
	}
}
