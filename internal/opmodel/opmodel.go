// Package opmodel implements the operational intuition of §VI-B: any
// multi-copy-atomic memory model can be expressed as processors with local
// buffering logic connected to an atomic memory, and a compound machine is
// obtained by merging the memory components while leaving each processor's
// buffers untouched (Figure 5).
//
// Per-model buffering:
//
//	SC:  no buffers — loads and stores go straight to memory.
//	TSO: a FIFO store buffer with forwarding; a FENCE drains it.
//	RC:  an (unordered-drain) store buffer flushed by a release, and a
//	     load buffer of possibly-stale copies invalidated by an acquire.
//	PLO: a FIFO store buffer (preserving W→W) and a load buffer that only
//	     a FENCE invalidates.
//
// The package supports both scripted executions (Figure 6) and exhaustive
// enumeration of all drain/issue interleavings; the enumerated outcomes
// cross-validate the axiomatic formalism in internal/memmodel.
package opmodel

import (
	"fmt"
	"sort"

	"heterogen/internal/memmodel"
)

// entry is one buffered store.
type entry struct {
	addr  string
	value int
}

// Proc is one processor with its model-specific buffering logic.
type Proc struct {
	Model    memmodel.ID
	storeBuf []entry
	loadBuf  map[string]int
	pc       int
	loads    []int
}

func newProc(model memmodel.ID) *Proc {
	return &Proc{Model: model, loadBuf: map[string]int{}}
}

func (p *Proc) hasStoreBuf() bool { return p.Model != memmodel.SC }
func (p *Proc) hasLoadBuf() bool  { return p.Model == memmodel.RC || p.Model == memmodel.PLO }

// fifoDrain reports whether the store buffer drains in order (TSO and PLO
// preserve W→W through FIFO draining; RC may drain in any order).
func (p *Proc) fifoDrain() bool { return p.Model == memmodel.TSO || p.Model == memmodel.PLO }

func (p *Proc) clone() *Proc {
	cp := &Proc{Model: p.Model, pc: p.pc,
		storeBuf: append([]entry(nil), p.storeBuf...),
		loadBuf:  make(map[string]int, len(p.loadBuf)),
		loads:    append([]int(nil), p.loads...)}
	for k, v := range p.loadBuf {
		cp.loadBuf[k] = v
	}
	return cp
}

// Machine is the compound operational machine: per-cluster processors
// (with their buffering logic) merged over one atomic memory.
type Machine struct {
	Prog  *memmodel.Program
	Procs []*Proc
	Mem   map[string]int
}

// New builds the compound machine for a program whose thread t runs under
// models[assign[t]].
func New(p *memmodel.Program, models []memmodel.ID, assign []int) (*Machine, error) {
	if len(assign) < len(p.Threads) {
		return nil, fmt.Errorf("opmodel: %d threads but %d assignments", len(p.Threads), len(assign))
	}
	m := &Machine{Prog: p, Mem: map[string]int{}}
	for t := range p.Threads {
		id := models[assign[t]]
		if _, err := memmodel.ByID(id); err != nil {
			return nil, err
		}
		m.Procs = append(m.Procs, newProc(id))
	}
	return m, nil
}

func (m *Machine) clone() *Machine {
	cp := &Machine{Prog: m.Prog, Mem: make(map[string]int, len(m.Mem))}
	for k, v := range m.Mem {
		cp.Mem[k] = v
	}
	for _, p := range m.Procs {
		cp.Procs = append(cp.Procs, p.clone())
	}
	return cp
}

// read performs a load on processor t per its buffering semantics.
func (m *Machine) read(t int, addr string, fresh bool) int {
	p := m.Procs[t]
	// Store-buffer forwarding: the newest own buffered store wins.
	for i := len(p.storeBuf) - 1; i >= 0; i-- {
		if p.storeBuf[i].addr == addr {
			return p.storeBuf[i].value
		}
	}
	if p.hasLoadBuf() && !fresh {
		if v, ok := p.loadBuf[addr]; ok {
			return v // possibly stale local copy
		}
	}
	v := m.Mem[addr]
	if p.hasLoadBuf() {
		p.loadBuf[addr] = v
	}
	return v
}

// CanIssue reports whether thread t's next op can execute now (fences and
// releases block on a non-empty store buffer).
func (m *Machine) CanIssue(t int) bool {
	p := m.Procs[t]
	ops := m.Prog.Threads[t]
	if p.pc >= len(ops) {
		return false
	}
	op := ops[p.pc]
	blocked := len(p.storeBuf) > 0
	switch {
	case op.Kind == memmodel.Fence && blocked:
		return false
	case op.Kind == memmodel.Store && op.Ord == memmodel.Release && blocked:
		// A release store flushes prior stores first.
		return false
	}
	return true
}

// Issue executes thread t's next operation.
func (m *Machine) Issue(t int) error {
	if !m.CanIssue(t) {
		return fmt.Errorf("opmodel: thread %d cannot issue", t)
	}
	p := m.Procs[t]
	op := m.Prog.Threads[t][p.pc]
	switch op.Kind {
	case memmodel.Load:
		if op.Ord == memmodel.Acquire {
			p.loadBuf = map[string]int{} // self-invalidate
			p.loads = append(p.loads, m.read(t, op.Addr, true))
		} else {
			p.loads = append(p.loads, m.read(t, op.Addr, false))
		}
	case memmodel.Store:
		if !p.hasStoreBuf() || op.Ord == memmodel.Release {
			// SC stores and releases write the atomic memory directly
			// (the release's earlier stores were flushed by CanIssue).
			m.Mem[op.Addr] = op.Value
		} else {
			p.storeBuf = append(p.storeBuf, entry{op.Addr, op.Value})
		}
	case memmodel.Fence:
		p.loadBuf = map[string]int{} // conservative: fences invalidate
	}
	p.pc++
	return nil
}

// CanDrain reports whether thread t's store buffer has a drainable entry
// at index i (FIFO models only drain index 0).
func (m *Machine) CanDrain(t, i int) bool {
	p := m.Procs[t]
	if i < 0 || i >= len(p.storeBuf) {
		return false
	}
	if p.fifoDrain() && i != 0 {
		return false
	}
	if !p.fifoDrain() {
		// RC drains any entry, but per-address program order must hold
		// (coherence): only the oldest entry to its address may drain.
		for j := 0; j < i; j++ {
			if p.storeBuf[j].addr == p.storeBuf[i].addr {
				return false
			}
		}
	}
	return true
}

// Drain writes the i-th buffered store of thread t to memory.
func (m *Machine) Drain(t, i int) error {
	if !m.CanDrain(t, i) {
		return fmt.Errorf("opmodel: thread %d cannot drain entry %d", t, i)
	}
	p := m.Procs[t]
	e := p.storeBuf[i]
	m.Mem[e.addr] = e.value
	p.storeBuf = append(p.storeBuf[:i], p.storeBuf[i+1:]...)
	return nil
}

// Done reports whether all programs retired and all buffers drained.
func (m *Machine) Done() bool {
	for t, p := range m.Procs {
		if p.pc < len(m.Prog.Threads[t]) || len(p.storeBuf) > 0 {
			return false
		}
	}
	return true
}

// Loads returns the values thread t's loads observed so far.
func (m *Machine) Loads(t int) []int { return append([]int(nil), m.Procs[t].loads...) }

// Outcome collects the observed load values keyed like memmodel outcomes.
func (m *Machine) Outcome() memmodel.Outcome {
	out := memmodel.Outcome{}
	for t, ops := range m.Prog.Threads {
		n := 0
		for _, op := range ops {
			if op.Kind == memmodel.Load {
				if n < len(m.Procs[t].loads) {
					out[memmodel.LoadKey(op)] = m.Procs[t].loads[n]
				}
				n++
			}
		}
	}
	return out
}

// snapshot canonically encodes the machine state for visited-set hashing.
func (m *Machine) snapshot() string {
	var b []byte
	keys := make([]string, 0, len(m.Mem))
	for k := range m.Mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = append(b, fmt.Sprintf("m%s=%d;", k, m.Mem[k])...)
	}
	for t, p := range m.Procs {
		b = append(b, fmt.Sprintf("p%d@%d[", t, p.pc)...)
		for _, e := range p.storeBuf {
			b = append(b, fmt.Sprintf("%s=%d,", e.addr, e.value)...)
		}
		lk := make([]string, 0, len(p.loadBuf))
		for k := range p.loadBuf {
			lk = append(lk, k)
		}
		sort.Strings(lk)
		for _, k := range lk {
			b = append(b, fmt.Sprintf("|%s=%d", k, p.loadBuf[k])...)
		}
		b = append(b, fmt.Sprintf("]%v", p.loads)...)
	}
	return string(b)
}

// Outcomes exhaustively enumerates every interleaving of issues and drains
// and returns the set of final outcomes — the operational semantics of the
// compound machine.
func Outcomes(p *memmodel.Program, models []memmodel.ID, assign []int) (memmodel.OutcomeSet, error) {
	init, err := New(p, models, assign)
	if err != nil {
		return nil, err
	}
	out := memmodel.OutcomeSet{}
	visited := map[string]bool{init.snapshot(): true}
	queue := []*Machine{init}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.Done() {
			out.Add(cur.Outcome())
			continue
		}
		for t := range cur.Procs {
			if cur.CanIssue(t) {
				next := cur.clone()
				if err := next.Issue(t); err != nil {
					return nil, err
				}
				if s := next.snapshot(); !visited[s] {
					visited[s] = true
					queue = append(queue, next)
				}
			}
			for i := range cur.Procs[t].storeBuf {
				if !cur.CanDrain(t, i) {
					continue
				}
				next := cur.clone()
				if err := next.Drain(t, i); err != nil {
					return nil, err
				}
				if s := next.snapshot(); !visited[s] {
					visited[s] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return out, nil
}
