package opmodel

import (
	"testing"

	"heterogen/internal/memmodel"
)

// TestFigure6Execution reproduces the §VI-B compound SC/RC execution of
// Figure 6 step by step: P1 (SC) writes data then flag directly to memory;
// P4 (RC) first reads a stale buffered copy of data, then acquires flag
// and reads the up-to-date value.
func TestFigure6Execution(t *testing.T) {
	prog := memmodel.NewProgram(
		// P1 (SC): Store(data=1); Store(flag=1)
		[]*memmodel.Op{memmodel.St("data", 1), memmodel.St("flag", 1)},
		// P4 (RC): Load(data); Acquire(flag); Load(data)
		[]*memmodel.Op{memmodel.Ld("data"), memmodel.LdAcq("flag"), memmodel.Ld("data")},
	)
	m, err := New(prog, []memmodel.ID{memmodel.SC, memmodel.RC}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-populate P4's load buffer with data=0 (its initial copy).
	if err := m.Issue(1); err != nil { // P4 loads data=0, caching it
		t.Fatal(err)
	}
	// t1, t2: P1 writes data and flag to the atomic memory.
	if err := m.Issue(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Issue(0); err != nil {
		t.Fatal(err)
	}
	if m.Mem["data"] != 1 || m.Mem["flag"] != 1 {
		t.Fatalf("memory = %v after SC stores", m.Mem)
	}
	// t4: acquire of flag reads 1 and invalidates the local buffer.
	if err := m.Issue(1); err != nil {
		t.Fatal(err)
	}
	// t5: the re-load of data reads the up-to-date 1 from memory.
	if err := m.Issue(1); err != nil {
		t.Fatal(err)
	}
	loads := m.Loads(1)
	if len(loads) != 3 || loads[0] != 0 || loads[1] != 1 || loads[2] != 1 {
		t.Fatalf("P4 loads = %v, want [0 1 1] (Figure 6)", loads)
	}
	if !m.Done() {
		t.Error("machine not done")
	}
}

// TestStoreBufferForwarding: a TSO processor reads its own buffered store.
func TestStoreBufferForwarding(t *testing.T) {
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 7), memmodel.Ld("x")},
	)
	m, _ := New(prog, []memmodel.ID{memmodel.TSO}, []int{0})
	m.Issue(0)
	if m.Mem["x"] != 0 {
		t.Fatal("TSO store bypassed the buffer")
	}
	m.Issue(0)
	if got := m.Loads(0); got[0] != 7 {
		t.Fatalf("forwarded load = %d, want 7", got[0])
	}
	if !m.CanDrain(0, 0) {
		t.Fatal("cannot drain buffered store")
	}
	m.Drain(0, 0)
	if m.Mem["x"] != 7 || !m.Done() {
		t.Fatal("drain failed")
	}
}

func TestFenceBlocksUntilDrained(t *testing.T) {
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.Fn(), memmodel.Ld("y")},
	)
	m, _ := New(prog, []memmodel.ID{memmodel.TSO}, []int{0})
	m.Issue(0)
	if m.CanIssue(0) {
		t.Fatal("fence issued with a buffered store")
	}
	m.Drain(0, 0)
	if !m.CanIssue(0) {
		t.Fatal("fence blocked after drain")
	}
}

func TestRCDrainAnyOrderButCoherent(t *testing.T) {
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.St("y", 1), memmodel.St("x", 2)},
	)
	m, _ := New(prog, []memmodel.ID{memmodel.RC}, []int{0})
	m.Issue(0)
	m.Issue(0)
	m.Issue(0)
	// Entry 1 (y) may drain before entry 0 (x=1): W→W relaxed.
	if !m.CanDrain(0, 1) {
		t.Error("RC cannot reorder independent drains")
	}
	// Entry 2 (x=2) must NOT drain before entry 0 (x=1): per-address order.
	if m.CanDrain(0, 2) {
		t.Error("RC drains same-address stores out of order")
	}
}

func TestSCMachineIsSC(t *testing.T) {
	// SB on an all-SC machine: both-zero unreachable.
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
		[]*memmodel.Op{memmodel.St("y", 1), memmodel.Ld("x")},
	)
	out, err := Outcomes(prog, []memmodel.ID{memmodel.SC}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	loads := prog.Loads()
	zero := memmodel.Outcome{memmodel.LoadKey(loads[0]): 0, memmodel.LoadKey(loads[1]): 0}
	if out.Has(zero) {
		t.Error("operational SC machine exhibits both-zero SB")
	}
	if len(out) != 3 {
		t.Errorf("SC SB outcomes = %d, want 3", len(out))
	}
}

func TestTSOMachineAllowsSB(t *testing.T) {
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
		[]*memmodel.Op{memmodel.St("y", 1), memmodel.Ld("x")},
	)
	out, err := Outcomes(prog, []memmodel.ID{memmodel.TSO}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	loads := prog.Loads()
	zero := memmodel.Outcome{memmodel.LoadKey(loads[0]): 0, memmodel.LoadKey(loads[1]): 0}
	if !out.Has(zero) {
		t.Error("operational TSO machine never exhibits both-zero SB")
	}
}

// TestOperationalSubsetOfAxiomatic cross-validates the two formalisms: the
// operational compound machine's outcomes must be allowed by the axiomatic
// compound model, across programs, models and assignments.
func TestOperationalSubsetOfAxiomatic(t *testing.T) {
	progs := []*memmodel.Program{
		memmodel.NewProgram( // SB
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
			[]*memmodel.Op{memmodel.St("y", 1), memmodel.Ld("x")}),
		memmodel.NewProgram( // MP with sync
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.StRel("y", 1)},
			[]*memmodel.Op{memmodel.LdAcq("y"), memmodel.Ld("x")}),
		memmodel.NewProgram( // MP plain
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.St("y", 1)},
			[]*memmodel.Op{memmodel.Ld("y"), memmodel.Ld("x")}),
		memmodel.NewProgram( // 2+2W
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.St("y", 2)},
			[]*memmodel.Op{memmodel.St("y", 1), memmodel.St("x", 2)}),
	}
	ids := memmodel.AllIDs()
	for _, prog := range progs {
		for _, a := range ids {
			for _, b := range ids {
				models := []memmodel.ID{a, b}
				assign := []int{0, 1}
				got, err := Outcomes(prog, models, assign)
				if err != nil {
					t.Fatal(err)
				}
				cm, err := memmodel.NewCompound(
					[]memmodel.Model{memmodel.MustByID(a), memmodel.MustByID(b)}, assign)
				if err != nil {
					t.Fatal(err)
				}
				allowed := memmodel.AllowedOutcomes(prog, cm)
				for k := range got {
					if _, ok := allowed[k]; !ok {
						t.Errorf("%sx%s: operational outcome %q not allowed axiomatically\nprogram:\n%s",
							a, b, k, prog)
					}
				}
				if len(got) == 0 {
					t.Errorf("%sx%s: no operational outcomes", a, b)
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	prog := memmodel.NewProgram([]*memmodel.Op{memmodel.Ld("x")})
	if _, err := New(prog, []memmodel.ID{memmodel.SC}, nil); err == nil {
		t.Error("missing assignment accepted")
	}
	if _, err := New(prog, []memmodel.ID{"zzz"}, []int{0}); err == nil {
		t.Error("unknown model accepted")
	}
	m, _ := New(prog, []memmodel.ID{memmodel.SC}, []int{0})
	if err := m.Drain(0, 0); err == nil {
		t.Error("drain of empty buffer accepted")
	}
	m.Issue(0)
	if err := m.Issue(0); err == nil {
		t.Error("issue past end accepted")
	}
}
