# Convenience targets for the HeteroGen repo. Everything is standard
# library Go; `make check` is the gate new changes must pass.

GO ?= go

.PHONY: all build test check race bench bench-all bench-smoke bench-symmetry bench-storage bench-por bench-compile bench-sim allocs vet profile serve

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages the parallel search touches (the model
# checker, the litmus suite pool, the compiler, the engine layer and the
# server's job/SSE machinery). The storage agreement matrices put the
# mcheck package near go test's default 10m cap under the race detector
# on a single-core runner, hence the explicit timeout.
race:
	$(GO) test -race -timeout 30m ./internal/mcheck/... ./internal/litmus/... ./internal/core/... ./internal/engine/... ./internal/server/...

# Allocation regression guards: the search hot path (Clone+Apply+encode),
# the bytes-per-state guard on the compacted visited table, the
# work-stealing deque push/take cycle, the compiler's memo-hit replay
# path, and the simulator's discrete-event loop (allocs per memory
# operation). Runs without the race detector: its instrumentation changes
# alloc counts, so the alloc guard files are build-tagged out of
# `make race`.
allocs:
	$(GO) test -run 'TestAllocRegression|TestBytesPerStateRegression' ./internal/mcheck ./internal/sim ./internal/core

# The verification gate: vet, race-checked tests of the concurrent
# packages, and the allocation guard.
check: vet race allocs

# Every bench-* target hands its emitter the output path through the
# matching BENCH_*_OUT environment variable (bench_test.go's emitBench);
# without the variable the benchmarks run but write nothing. All reports
# embed the same runner-metadata block (internal/benchmeta).

# Regenerate the performance numbers in BENCH_PARALLEL.json / README.
# Heavy: the §VII-C workload is ~1.1M states per case.
bench:
	BENCH_PARALLEL_OUT=BENCH_PARALLEL.json $(GO) test -run XXX -bench 'BenchmarkExploreParallel|BenchmarkLitmusSuiteParallel' -benchtime 1x -timeout 30m .

# Regenerate the symmetry-reduction numbers in BENCH_SYMMETRY.json.
bench-symmetry:
	BENCH_SYMMETRY_OUT=BENCH_SYMMETRY.json $(GO) test -run XXX -bench 'BenchmarkExploreSymmetry' -benchtime 1x -timeout 30m .

# Minutes-scale end-to-end health check: a MaxStates-capped §VII-C search
# plus the 2-thread litmus shapes on the headline pair.
bench-smoke:
	$(GO) test -run XXX -bench 'BenchmarkSmoke' -benchtime 1x -timeout 10m .

# Regenerate the state-storage numbers in BENCH_STORAGE.json: the §VII-C
# search under each visited-set mode, and the 2-caches-per-cluster
# free-running search to the 10M-state bound in fixed memory.
bench-storage:
	BENCH_STORAGE_OUT=BENCH_STORAGE.json $(GO) test -run XXX -bench 'BenchmarkStorage' -benchtime 1x -timeout 30m .

# Regenerate the partial-order-reduction numbers in BENCH_POR.json: the
# §VII-C search and the fused 2x2 symmetric workload, POR off vs on.
bench-por:
	BENCH_POR_OUT=BENCH_POR.json $(GO) test -run XXX -bench 'BenchmarkExplorePOR' -benchtime 1x -timeout 30m .

# Regenerate BENCH_COMPILE.json (schema v3): the §VII-C search through the
# interpreted composite, table extraction (memoized, non-memoized and
# warm-started), compile+check, the dispatch-only precompiled check, and
# the .hgcf artifact lifecycle (serialize, cold load, cold load + check).
bench-compile:
	BENCH_COMPILE_OUT=BENCH_COMPILE.json $(GO) test -run XXX -bench 'BenchmarkCompile' -benchtime 1x -timeout 30m .

# Regenerate BENCH_SIM.json: the full-scale Figure 10 sweep (compiled
# dispatch), the stress trace families and the Table II pair sweep, all
# through the parallel scenario runner. The figure10 section records the
# wall-clock against the pre-optimization sequential engine's measured
# baseline (see EXPERIMENTS.md §VIII).
bench-sim:
	$(GO) run ./cmd/hgsim -compiled -family all -pairs -json BENCH_SIM.json

# Regenerate every BENCH_*.json in one (long) sitting: all the bench-*
# targets above, each writing through its BENCH_*_OUT variable. Hours of
# wall-clock on a single-core runner — run it when the numbers matter.
bench-all: bench bench-symmetry bench-storage bench-por bench-compile bench-sim

# Run the verification daemon locally with a warm compile cache and a
# bounded memory pool; see docs/SERVER.md for the API.
serve: build
	$(GO) run ./cmd/hgserve -addr 127.0.0.1:8080 -compile-cache .hgcache -mem-pool 1GiB

# CPU- and heap-profile the §VII-C search (POR on, hash compaction).
# Writes /tmp/hgcheck.{cpu,mem}.pprof; inspect with
# `go tool pprof /tmp/hgcheck.cpu.pprof`.
profile: build
	$(GO) run ./cmd/hgcheck -pair MESI,RCC-O -caches 1 -addrs 2 \
		-workers 1 -cpuprofile /tmp/hgcheck.cpu.pprof -memprofile /tmp/hgcheck.mem.pprof
