# Convenience targets for the HeteroGen repo. Everything is standard
# library Go; `make check` is the gate new changes must pass.

GO ?= go

.PHONY: all build test check race bench vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages the parallel search touches (the model checker
# and the litmus suite pool).
race:
	$(GO) test -race ./internal/mcheck/... ./internal/litmus/...

# The verification gate: vet plus race-checked tests of the concurrent
# packages.
check: vet race

# Regenerate the performance numbers in BENCH_PARALLEL.json / README.
# Heavy: the §VII-C workload is ~1.1M states per case.
bench:
	$(GO) test -run XXX -bench 'BenchmarkExploreParallel|BenchmarkLitmusSuiteParallel' -benchtime 1x -timeout 30m .
