module heterogen

go 1.22
