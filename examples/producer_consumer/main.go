// Producer/consumer reproduces Figure 4: a C11-style producer/consumer
// pattern compiled onto a heterogeneous RC×TSO machine. Compound
// consistency preserves each cluster's compiler mappings (§V-D): the C11
// release on the RC cluster compiles to a release store, while the C11
// acquire on the TSO cluster compiles to a plain load. The example prints
// the per-cluster "assembly", verifies the pattern axiomatically, and
// validates it on the fused RCC (RC) & TSO-CC (TSO) protocol.
package main

import (
	"fmt"
	"log"

	"heterogen/internal/armor"
	"heterogen/internal/core"
	"heterogen/internal/litmus"
	"heterogen/internal/memmodel"
	"heterogen/internal/protocols"
)

func main() {
	// The C11 program: producer writes data then releases the flag;
	// consumer acquires the flag and reads the data.
	producer := []*memmodel.Op{memmodel.St("data", 1), memmodel.StRel("flag", 1)}
	consumer := []*memmodel.Op{memmodel.LdAcq("flag"), memmodel.Ld("data")}

	rc := memmodel.MustByID(memmodel.RC)
	tso := memmodel.MustByID(memmodel.TSO)

	fmt.Println("C11 source:")
	fmt.Println("  producer: Store(data=1); Release(flag=1)")
	fmt.Println("  consumer: while(Acquire(flag)!=1); Load(data)")
	fmt.Println()

	// Figure 4(b): the compiler mapping per cluster, via ArMOR.
	prodRC := armor.AdaptThread(producer, rc)
	consTSO := armor.AdaptThread(consumer, tso)
	fmt.Println("compiled for the RC cluster (producer):")
	for _, op := range prodRC {
		fmt.Println("   ", op)
	}
	fmt.Println("compiled for the TSO cluster (consumer):")
	for _, op := range consTSO {
		fmt.Println("   ", op)
	}
	fmt.Println()

	// The compound model guarantees the pattern: flag=1 implies data=1.
	cm, err := memmodel.NewCompound([]memmodel.Model{rc, tso}, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	prog := memmodel.NewProgram(prodRC, consTSO)
	loads := prog.Loads()
	stale := memmodel.Outcome{
		memmodel.LoadKey(loads[0]): 1, memmodel.LoadKey(loads[1]): 0}
	allowed := memmodel.AllowedOutcomes(prog, cm)
	fmt.Printf("stale outcome (flag=1, data=0) allowed under %s: %t\n",
		cm.ID(), allowed.Has(stale))
	if allowed.Has(stale) {
		log.Fatal("compound model failed to order the pattern")
	}

	// And on the synthesized protocol: RCC & TSO-CC fused by HeteroGen.
	fusion, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameRCC),
		protocols.MustByName(protocols.NameTSOCC))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexhaustive check on the fused RCC & TSO-CC protocol:")
	shape, _ := litmus.ShapeByName("MP")
	// Producer on cluster 0 (RC), consumer on cluster 1 (TSO).
	r := litmus.RunFused(fusion, shape, []int{0, 1}, litmus.Options{})
	fmt.Println(" ", r)
	if !r.Pass() || !r.Forbidden {
		log.Fatal("protocol violates the producer/consumer guarantee")
	}
	fmt.Println("producer_consumer: guarantee holds")
}
