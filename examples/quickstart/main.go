// Quickstart: fuse two cluster protocols with HeteroGen, inspect the
// analysis, watch a write propagate across clusters through the merged
// directory, and validate a litmus test exhaustively.
package main

import (
	"fmt"
	"log"

	"heterogen/internal/core"
	"heterogen/internal/litmus"
	"heterogen/internal/mcheck"
	"heterogen/internal/protocols"
	"heterogen/internal/spec"
)

func main() {
	// 1. Pick the cluster protocols: a MESI CPU cluster (SC) and a
	//    DeNovo-like RCC-O accelerator cluster (RC) — the paper's headline
	//    pair.
	mesi := protocols.MustByName(protocols.NameMESI)
	rcco := protocols.MustByName(protocols.NameRCCO)

	// 2. Fuse them. HeteroGen analyzes both protocols (globally-visible
	//    writes, early write acks), picks the proxy concurrency design and
	//    the ArMOR translations, and synthesizes the merged directory.
	fusion, err := core.Fuse(core.Options{}, mesi, rcco)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fusion.Describe())

	// 3. Build a small machine (one cache per cluster) and script the
	//    Figure 8 flow: the RC core writes and releases; the propagation
	//    invalidates the SC cluster through MESI's own protocol.
	sys, layout := core.BuildSystem(fusion, []int{1, 1})
	layout.Merged.SetTrace(func(s string) { fmt.Println("   ", s) })
	sys.SetPrograms([][]spec.CoreReq{
		{{Op: spec.OpLoad, Addr: 0}},                                  // SC core: read data
		{{Op: spec.OpStore, Addr: 0, Value: 7}, {Op: spec.OpRelease}}, // RC core: write + release
	})
	fmt.Println("\nscripted execution:")
	if !sys.Apply(mcheck.Move{Kind: mcheck.MoveIssue, Core: 0}) {
		log.Fatal("issue failed")
	}
	must(sys.Drain())
	if !sys.Apply(mcheck.Move{Kind: mcheck.MoveIssue, Core: 1}) {
		log.Fatal("issue failed")
	}
	must(sys.Drain())
	if !sys.Apply(mcheck.Move{Kind: mcheck.MoveIssue, Core: 1}) {
		log.Fatal("issue failed")
	}
	must(sys.Drain())
	fmt.Printf("merged directory local state: %s (owner=cluster%d, mem=%d)\n",
		layout.Merged.LocalState(0), layout.Merged.Owner(0), layout.Merged.Memory().Read(0))

	// 4. Validate the MP litmus shape exhaustively on the fused protocol:
	//    every observable outcome must be allowed by the SCxRC compound
	//    consistency model.
	shape, _ := litmus.ShapeByName("MP")
	for _, assign := range litmus.Allocations(2, 2, false) {
		r := litmus.RunFused(fusion, shape, assign, litmus.Options{})
		fmt.Printf("litmus %s\n", r)
		if !r.Pass() {
			log.Fatal("litmus failure")
		}
	}
	fmt.Println("quickstart: all checks passed")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
