// Fuse_custom shows the artifact's §A.6 customization path: define a new
// atomic cache coherence protocol in the PCC-like description language,
// parse it, let HeteroGen fuse it with a built-in protocol, and validate
// the result — all without touching the library.
//
// The custom protocol is a write-through valid/invalid design ("WTVI")
// that enforces SC through blocking write-throughs and
// invalidate-on-write at the directory.
package main

import (
	"fmt"
	"log"
	"strings"

	"heterogen/internal/core"
	"heterogen/internal/litmus"
	"heterogen/internal/protocols"
	"heterogen/internal/spec"
)

const wtvi = `
# WTVI: a blocking write-through protocol. Stores write through to the
# directory and wait for the ack; the directory invalidates all sharers
# before acknowledging, so SWMR holds at write boundaries and the
# coherence interface enforces SC.
protocol WTVI model SC acktype InvAck

message GetV req
message WT req data
message Data resp data
message WTAck resp data
message InvAck resp
message Inv fwd

cache init I stable I V
  I Load -> IV_D : send GetV dir
  IV_D msg Data -> V : loadmsg, coredone
  V Load -> V : coredone
  V Evict -> I
  V msg Inv -> I : send InvAck msgreq
  # A stale Inv can arrive after a silent eviction: acknowledge it.
  # (Without this row the model checker finds the deadlock immediately —
  # try deleting it.)
  I msg Inv -> I : send InvAck msgreq
  I Store -> IW_A : send WT dir store
  V Store -> IW_A : send WT dir store
  IW_A msg WTAck ack=0 -> V : loadmsg, coredone
  IW_A msg WTAck ack>0 -> IW_W : loadmsg, setacks
  IW_A msg Inv -> IW_A : send InvAck msgreq
  IW_W lastack -> V : coredone
  IW_W msg Inv -> IW_W : send InvAck msgreq

dir init I stable I
  I msg GetV -> I : send Data msgsrc mem, addsharer
  I msg WT -> I : writemem, invsharers Inv, clearsharers, sendack WTAck msgsrc mem, addsharer
`

func main() {
	custom, err := spec.ParsePCC(wtvi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed custom protocol %s (model %s): %d cache rows, %d dir rows\n",
		custom.Name, custom.Model, len(custom.Cache.Rows), len(custom.Dir.Rows))

	fusion, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameRCCO), custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fusion.Describe())

	entry, _, err := core.EnumerateFSM(fusion, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged directory: %d states, %d transitions\n", entry.States, entry.Transitions)

	// The customization path runs both ways: the fused directory compiles
	// back into a flat table whose projection exports in the same PCC-like
	// language the custom protocol came in as (`heterogen -emit pcc` is the
	// CLI spelling of this step).
	_, cf, err := core.EnumerateCompiled(fusion, true)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := cf.Protocol()
	if err != nil {
		log.Fatal(err)
	}
	pcc := spec.ExportPCC(flat)
	if _, err := spec.ParsePCC(pcc); err != nil {
		log.Fatal("compiled projection does not re-parse: ", err)
	}
	fmt.Printf("\ncompiled table: %d interned (directory,memory) states, %d transitions; PCC projection round-trips (%d lines)\n",
		cf.DirStates(), cf.Transitions(), strings.Count(pcc, "\n"))
	for _, line := range strings.SplitN(pcc, "\n", 4)[:3] {
		fmt.Println("  ", line)
	}

	fmt.Println("\nlitmus validation (MP and SB, both allocations):")
	for _, name := range []string{"MP", "SB"} {
		shape, _ := litmus.ShapeByName(name)
		for _, assign := range litmus.Allocations(2, 2, false) {
			r := litmus.RunFused(fusion, shape, assign, litmus.Options{})
			fmt.Println(" ", r)
			if !r.Pass() {
				log.Fatal("custom fusion failed validation")
			}
		}
	}
	fmt.Println("fuse_custom: custom protocol fused and validated")
}
