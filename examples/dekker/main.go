// Dekker reproduces Figure 3: the store-buffering (Dekker) litmus test on
// a compound SC×TSO machine. Without a fence the TSO thread may defer its
// store past its load, so both loads can return 0; a single FENCE on the
// TSO side forbids it — the SC thread needs none. The example shows the
// axiomatic verdicts and then confirms them on the HeteroGen-fused
// MSI (SC) & TSO-CC (TSO) protocol by exhaustive model checking.
package main

import (
	"fmt"
	"log"

	"heterogen/internal/core"
	"heterogen/internal/litmus"
	"heterogen/internal/memmodel"
	"heterogen/internal/protocols"
)

func main() {
	cm, err := memmodel.NewCompound(
		[]memmodel.Model{memmodel.MustByID(memmodel.SC), memmodel.MustByID(memmodel.TSO)},
		[]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3(a): no fences.
	pa := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
		[]*memmodel.Op{memmodel.St("y", 1), memmodel.Ld("x")},
	)
	fmt.Println("Figure 3(a): T1 on SC, T2 on TSO, no fences")
	fmt.Print(pa.String())
	loads := pa.Loads()
	bothZero := memmodel.Outcome{
		memmodel.LoadKey(loads[0]): 0, memmodel.LoadKey(loads[1]): 0}
	fmt.Printf("  both loads = 0 allowed under %s: %t\n\n",
		cm.ID(), memmodel.AllowedOutcomes(pa, cm).Has(bothZero))

	// Figure 3(b): FENCE between St2 and Ld2 only.
	pb := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
		[]*memmodel.Op{memmodel.St("y", 1), memmodel.Fn(), memmodel.Ld("x")},
	)
	fmt.Println("Figure 3(b): FENCE on the TSO thread only")
	fmt.Print(pb.String())
	loadsB := pb.Loads()
	bothZeroB := memmodel.Outcome{
		memmodel.LoadKey(loadsB[0]): 0, memmodel.LoadKey(loadsB[1]): 0}
	fmt.Printf("  both loads = 0 allowed under %s: %t\n\n",
		cm.ID(), memmodel.AllowedOutcomes(pb, cm).Has(bothZeroB))

	// Now on silicon (well, on the synthesized protocol): fuse MSI with
	// TSO-CC and model-check the SB shape — the generator writes the
	// fences for the weakest model and armor drops the SC side's.
	fusion, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMSI),
		protocols.MustByName(protocols.NameTSOCC))
	if err != nil {
		log.Fatal(err)
	}
	shape, _ := litmus.ShapeByName("SB")
	fmt.Println("exhaustive check on the fused MSI & TSO-CC protocol:")
	for _, assign := range litmus.Allocations(2, 2, false) {
		r := litmus.RunFused(fusion, shape, assign, litmus.Options{})
		fmt.Println(" ", r)
		if !r.Pass() {
			log.Fatal("protocol violates the compound model")
		}
	}
	fmt.Println("dekker: verdicts confirmed")
}
