// Abstract_machine reproduces Figures 5 and 6: the *operational* intuition
// behind HeteroGen. Any multi-copy-atomic model is processors-with-buffers
// over an atomic memory; the compound machine merges the memories and
// keeps each processor's buffers. The example replays Figure 6's SC/RC
// execution step by step and then exhaustively cross-checks the
// operational machine against the axiomatic compound model.
package main

import (
	"fmt"
	"log"

	"heterogen/internal/memmodel"
	"heterogen/internal/opmodel"
)

func main() {
	// Figure 5's machine: P1 (SC, no buffers) and P4 (RC, store and load
	// buffers) connected to one atomic memory.
	prog := memmodel.NewProgram(
		[]*memmodel.Op{memmodel.St("data", 1), memmodel.St("flag", 1)},                   // P1 (SC)
		[]*memmodel.Op{memmodel.Ld("data"), memmodel.LdAcq("flag"), memmodel.Ld("data")}, // P4 (RC)
	)
	m, err := opmodel.New(prog, []memmodel.ID{memmodel.SC, memmodel.RC}, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}

	step := func(what string, t int) {
		if err := m.Issue(t); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s mem=%v  P4 loads=%v\n", what, m.Mem, m.Loads(1))
	}
	fmt.Println("Figure 6 execution on the compound SC/RC machine:")
	step("P4: Load(data) — caches 0 locally", 1)
	step("t1  P1: Store(data=1) → memory", 0)
	step("t2  P1: Store(flag=1) → memory", 0)
	step("t4  P4: Acquire(flag) — invalidates buffer, reads 1", 1)
	step("t5  P4: Load(data) — fresh from memory, reads 1", 1)

	loads := m.Loads(1)
	if loads[0] != 0 || loads[1] != 1 || loads[2] != 1 {
		log.Fatalf("expected the Figure 6 sequence [0 1 1], got %v", loads)
	}
	fmt.Println("\nP4 observed the stale 0 before the acquire and the fresh 1 after —")
	fmt.Println("exactly the legal SC/RC compound execution of Figure 6.")

	// Cross-check: every outcome the operational machine can produce is
	// allowed by the axiomatic compound model of §V.
	out, err := opmodel.Outcomes(prog, []memmodel.ID{memmodel.SC, memmodel.RC}, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := memmodel.NewCompound(
		[]memmodel.Model{memmodel.MustByID(memmodel.SC), memmodel.MustByID(memmodel.RC)},
		[]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	allowed := memmodel.AllowedOutcomes(prog, cm)
	for k := range out {
		if _, ok := allowed[k]; !ok {
			log.Fatalf("operational outcome %q not allowed axiomatically", k)
		}
	}
	fmt.Printf("\noperational outcomes (%d) ⊆ axiomatic allowed outcomes (%d): verified\n",
		len(out), len(allowed))
}
