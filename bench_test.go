// Package heterogen's benchmark harness regenerates every table and figure
// of the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTableI            — the seven case-study protocols
//	BenchmarkTableII           — merged-directory state/transition counts
//	BenchmarkFigure3           — Dekker on the SC×TSO compound machine
//	BenchmarkLitmusSuite       — §VII-B heterogeneous litmus validation
//	BenchmarkDeadlockFreedom   — §VII-C reachability search
//	BenchmarkFigure10          — §VIII speedup and traffic vs HCC
//	BenchmarkAblation*         — design-choice ablations (DESIGN.md)
//
// The -short benchmarks keep iteration times in seconds; EXPERIMENTS.md
// records full-scale runs produced by the cmd tools.
package heterogen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"heterogen/internal/armor"
	"heterogen/internal/benchmeta"
	"heterogen/internal/core"
	"heterogen/internal/litmus"
	"heterogen/internal/mcheck"
	"heterogen/internal/memmodel"
	"heterogen/internal/protocols"
	"heterogen/internal/sim"
	"heterogen/internal/spec"
	"heterogen/internal/workload"
)

// BenchmarkTableI builds and validates the seven input protocols.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range protocols.All() {
			if err := p.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(protocols.Names())), "protocols")
}

// BenchmarkTableII enumerates the merged-directory FSM for all eight case
// studies (quick mode; `heterogen -tableii -full` for the full search).
func BenchmarkTableII(b *testing.B) {
	var states, trans int
	for i := 0; i < b.N; i++ {
		states, trans = 0, 0
		for _, pair := range core.TableIIPairs() {
			f, err := core.Fuse(core.Options{},
				protocols.MustByName(pair[0]), protocols.MustByName(pair[1]))
			if err != nil {
				b.Fatal(err)
			}
			e, _, err := core.EnumerateFSM(f, true)
			if err != nil {
				b.Fatal(err)
			}
			states += e.States
			trans += e.Transitions
		}
	}
	b.ReportMetric(float64(states), "total-states")
	b.ReportMetric(float64(trans), "total-transitions")
}

// BenchmarkFigure3 evaluates the Dekker verdicts on the SC×TSO compound.
func BenchmarkFigure3(b *testing.B) {
	cm, err := memmodel.NewCompound(
		[]memmodel.Model{memmodel.MustByID(memmodel.SC), memmodel.MustByID(memmodel.TSO)},
		[]int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pa := memmodel.NewProgram(
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
			[]*memmodel.Op{memmodel.St("y", 1), memmodel.Ld("x")})
		pb := memmodel.NewProgram(
			[]*memmodel.Op{memmodel.St("x", 1), memmodel.Ld("y")},
			[]*memmodel.Op{memmodel.St("y", 1), memmodel.Fn(), memmodel.Ld("x")})
		la, lb := pa.Loads(), pb.Loads()
		zeroA := memmodel.Outcome{memmodel.LoadKey(la[0]): 0, memmodel.LoadKey(la[1]): 0}
		zeroB := memmodel.Outcome{memmodel.LoadKey(lb[0]): 0, memmodel.LoadKey(lb[1]): 0}
		if !memmodel.AllowedOutcomes(pa, cm).Has(zeroA) {
			b.Fatal("Figure 3(a) verdict wrong")
		}
		if memmodel.AllowedOutcomes(pb, cm).Has(zeroB) {
			b.Fatal("Figure 3(b) verdict wrong")
		}
	}
}

// BenchmarkLitmusSuite runs the heterogeneous litmus validation: the
// 2-thread shapes on every Table II pair with both heterogeneous
// allocations (the 3/4-thread shapes and full allocation sweeps run via
// cmd/hglitmus; EXPERIMENTS.md records a full run).
func BenchmarkLitmusSuite(b *testing.B) {
	var tests, passed int
	for i := 0; i < b.N; i++ {
		tests, passed = 0, 0
		for _, pair := range core.TableIIPairs() {
			f, err := core.Fuse(core.Options{},
				protocols.MustByName(pair[0]), protocols.MustByName(pair[1]))
			if err != nil {
				b.Fatal(err)
			}
			for _, shape := range litmus.Shapes() {
				threads := len(shape.Prog().Threads)
				if threads > 2 {
					continue
				}
				for _, assign := range litmus.Allocations(threads, 2, false) {
					r := litmus.RunFused(f, shape, assign, litmus.Options{})
					tests++
					if r.Pass() {
						passed++
					} else {
						b.Fatalf("litmus failure: %s", r)
					}
				}
			}
		}
	}
	b.ReportMetric(float64(tests), "tests")
	b.ReportMetric(float64(passed), "passed")
}

// deadlockDriver matches cmd/hgcheck's stress workload.
func deadlockDriver(cores, addrs int) [][]spec.CoreReq {
	progs := make([][]spec.CoreReq, cores)
	for c := 0; c < cores; c++ {
		for a := 0; a < addrs; a++ {
			progs[c] = append(progs[c],
				spec.CoreReq{Op: spec.OpStore, Addr: spec.Addr(a), Value: c + 1},
				spec.CoreReq{Op: spec.OpLoad, Addr: spec.Addr((a + 1) % addrs)})
		}
		progs[c] = append(progs[c], spec.CoreReq{Op: spec.OpRelease}, spec.CoreReq{Op: spec.OpAcquire})
	}
	return progs
}

// BenchmarkDeadlockFreedom is the §VII-C exhaustive reachability search on
// the headline fusion (2 addresses, 1 cache per cluster, evictions free).
func BenchmarkDeadlockFreedom(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		f, err := core.Fuse(core.Options{},
			protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
		if err != nil {
			b.Fatal(err)
		}
		sys, _ := core.BuildSystem(f, []int{1, 1})
		sys.SetPrograms(deadlockDriver(2, 2))
		res := mcheck.Explore(sys, mcheck.Options{Evictions: true, HashCompaction: true})
		if res.Deadlocks > 0 || res.Truncated {
			b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkFigure10 regenerates the §VIII comparison at reduced trace
// scale (cmd/hgsim runs it at full scale).
func BenchmarkFigure10(b *testing.B) {
	var rows []sim.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.RunFigure10(sim.TableIII(), 0.15)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sim.GeoMean(rows, func(r sim.Row) float64 { return r.SpeedupNoHS }), "gmean-noHS")
	b.ReportMetric(sim.GeoMean(rows, func(r sim.Row) float64 { return r.SpeedupWrHS }), "gmean-wrHS")
	b.ReportMetric(sim.GeoMean(rows, func(r sim.Row) float64 { return r.TrafficNoHS }), "traffic-noHS")
}

// BenchmarkAblationHandshake compares the three §VIII handshake variants
// on the handshake-sensitive benchmark (ligra-bf).
func BenchmarkAblationHandshake(b *testing.B) {
	cfg := sim.TableIII()
	params, err := workload.BenchmarkByName("ligra-bf")
	if err != nil {
		b.Fatal(err)
	}
	wl := workload.Generate(params, workload.Layout{BigCores: cfg.BigCores, TinyCores: cfg.TinyCores}).Scale(0.3)
	for _, v := range sim.Figure10Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				st, err := sim.RunBenchmark(cfg, v, wl)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationProxyPool sweeps the merged directory's bridging
// concurrency (the aggressive design's inter-address overlap).
func BenchmarkAblationProxyPool(b *testing.B) {
	cfg := sim.TableIII()
	params, _ := workload.BenchmarkByName("ligra-cc")
	wl := workload.Generate(params, workload.Layout{BigCores: cfg.BigCores, TinyCores: cfg.TinyCores}).Scale(0.3)
	for _, pool := range []int{1, 4, 16} {
		pool := pool
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			c := cfg
			c.ProxyPool = pool
			var cycles uint64
			for i := 0; i < b.N; i++ {
				st, err := sim.RunBenchmark(c, sim.Variant{Name: "noHS", Handshake: core.HSNone}, wl)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationConservative compares the conservative processor-centric
// design against the aggressive memory-centric one on the same workload
// (§VI-D2), using the MESI&RCC-O fusion where both are legal.
func BenchmarkAblationConservative(b *testing.B) {
	cfg := sim.TableIII()
	params, _ := workload.BenchmarkByName("cilk5-cs")
	wl := workload.Generate(params, workload.Layout{BigCores: cfg.BigCores, TinyCores: cfg.TinyCores}).Scale(0.3)
	for _, cons := range []bool{false, true} {
		cons := cons
		name := "aggressive"
		if cons {
			name = "conservative"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				f, err := core.Fuse(core.Options{ForceConservative: cons, ProxyPool: cfg.ProxyPool},
					protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(cfg, f, wl)
				if err != nil {
					b.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkMOSTTranslation measures the ArMOR table construction and
// SC-equivalent sequence derivation.
func BenchmarkMOSTTranslation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range memmodel.AllIDs() {
			m := memmodel.MustByID(id)
			armor.BuildMOST(m)
			if _, err := armor.ProxyStoreSeq(id); err != nil {
				b.Fatal(err)
			}
			if _, err := armor.ProxyLoadSeq(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStateExploration measures raw model-checker throughput on the
// homogeneous MSI Dekker configuration.
func BenchmarkStateExploration(b *testing.B) {
	progs := [][]spec.CoreReq{
		{{Op: spec.OpStore, Addr: 0, Value: 1}, {Op: spec.OpLoad, Addr: 1}},
		{{Op: spec.OpStore, Addr: 1, Value: 1}, {Op: spec.OpLoad, Addr: 0}},
	}
	var states int
	for i := 0; i < b.N; i++ {
		sys := mcheck.NewHomogeneous(protocols.MustByName(protocols.NameMSI), 2)
		sys.SetPrograms(progs)
		res := mcheck.Explore(sys, mcheck.Options{})
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkExploreParallel measures the worker-pool frontier search on the
// §VII-C fused reachability configuration across worker counts and visited-
// set encodings. workers=1/snapshot is the pre-parallel baseline; the
// workers=N/binary row is the production configuration.
func BenchmarkExploreParallel(b *testing.B) {
	f, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
	if err != nil {
		b.Fatal(err)
	}
	f.Freeze()
	cases := []struct {
		name    string
		workers int
		enc     mcheck.Encoding
	}{
		{"workers=1/snapshot", 1, mcheck.EncodingSnapshot},
		{"workers=1/binary", 1, mcheck.EncodingBinary},
		{fmt.Sprintf("workers=%d/binary", runtime.NumCPU()), runtime.NumCPU(), mcheck.EncodingBinary},
	}
	var rec benchRecorder
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				sys, _ := core.BuildSystem(f, []int{1, 1})
				sys.SetPrograms(deadlockDriver(2, 2))
				start := time.Now()
				res := mcheck.Explore(sys, mcheck.Options{
					Evictions: true, HashCompaction: true,
					Workers: tc.workers, Encoding: tc.enc})
				if res.Deadlocks > 0 || res.Truncated {
					b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
				}
				rec.record(tc.name, time.Since(start), res.States, "")
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
	emitBench(b, "BENCH_PARALLEL_OUT", benchReport{
		Schema:    "heterogen-bench-parallel/v2",
		Benchmark: "BenchmarkExploreParallel",
		Description: "§VII-C deadlock-freedom search on fused MESI & RCC-O, 1 cache per cluster, 2 addresses, evictions at any time, hash compaction, across worker counts and visited-set encodings; " +
			"BENCH_PARALLEL_OUT=BENCH_PARALLEL.json go test -bench BenchmarkExploreParallel -benchtime 1x (make bench)",
		Runner: benchmeta.Collect(singleCoreNote),
		Cases:  rec.rows,
	})
}

// symmetricDriver is deadlockDriver with the core-distinguishing store
// values removed: every core runs the identical program, so all caches of
// a cluster are interchangeable and the symmetry reduction applies.
func symmetricDriver(cores, addrs int) [][]spec.CoreReq {
	var prog []spec.CoreReq
	for a := 0; a < addrs; a++ {
		prog = append(prog,
			spec.CoreReq{Op: spec.OpStore, Addr: spec.Addr(a), Value: 1},
			spec.CoreReq{Op: spec.OpLoad, Addr: spec.Addr((a + 1) % addrs)})
	}
	prog = append(prog, spec.CoreReq{Op: spec.OpRelease}, spec.CoreReq{Op: spec.OpAcquire})
	progs := make([][]spec.CoreReq, cores)
	for c := range progs {
		progs[c] = prog
	}
	return progs
}

// BenchmarkExploreSymmetry measures the cache-permutation symmetry
// reduction against the unreduced search on fully symmetric
// configurations (BENCH_SYMMETRY.json): the fused §VII-C machine with two
// caches per cluster, and a homogeneous MESI triple with evictions, one
// address each (two addresses push the unreduced fused space past 6M
// states). The states metric shows the visited-set reduction (≈ group
// order).
func BenchmarkExploreSymmetry(b *testing.B) {
	f, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
	if err != nil {
		b.Fatal(err)
	}
	f.Freeze()
	fused := func() *mcheck.System {
		sys, _ := core.BuildSystem(f, []int{2, 2})
		sys.SetPrograms(symmetricDriver(4, 1))
		return sys
	}
	homog := func() *mcheck.System {
		sys := mcheck.NewHomogeneous(protocols.MustByName(protocols.NameMESI), 3)
		sys.SetPrograms(symmetricDriver(3, 1))
		return sys
	}
	cases := []struct {
		name  string
		build func() *mcheck.System
		opts  mcheck.Options
	}{
		{"fused-2x2/plain", fused, mcheck.Options{HashCompaction: true}},
		{"fused-2x2/symmetry", fused, mcheck.Options{HashCompaction: true, Symmetry: true}},
		{"mesi-3-evict/plain", homog, mcheck.Options{HashCompaction: true, Evictions: true}},
		{"mesi-3-evict/symmetry", homog, mcheck.Options{HashCompaction: true, Evictions: true, Symmetry: true}},
	}
	var rec benchRecorder
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res *mcheck.Result
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res = mcheck.Explore(tc.build(), tc.opts)
				if res.Deadlocks > 0 || res.Truncated {
					b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
				}
				rec.record(tc.name, time.Since(start), res.States,
					fmt.Sprintf("%d symmetry perms", res.SymmetryPerms))
			}
			b.ReportMetric(float64(res.States), "states")
			b.ReportMetric(float64(res.SymmetryPerms), "perms")
		})
	}
	emitBench(b, "BENCH_SYMMETRY_OUT", benchReport{
		Schema:    "heterogen-bench-symmetry/v2",
		Benchmark: "BenchmarkExploreSymmetry",
		Description: "cache-permutation symmetry reduction vs the unreduced search on fully symmetric configurations (fused MESI & RCC-O 2x2, homogeneous MESI triple with evictions); " +
			"BENCH_SYMMETRY_OUT=BENCH_SYMMETRY.json go test -bench BenchmarkExploreSymmetry -benchtime 1x (make bench-symmetry)",
		Runner: benchmeta.Collect(singleCoreNote),
		Cases:  rec.rows,
	})
}

// BenchmarkExplorePOR measures the ample-set partial order reduction
// (BENCH_POR.json, `make bench-por`) on the §VII-C reachability search:
// the headline fused configuration with POR off vs on under the
// production hash-compacted storage (sequential, so rows are directly
// comparable to BENCH_STORAGE.json), POR stacked on the disk-spilling
// frontier, and POR combined with the symmetry reduction on the
// symmetric 2×2 fusion. Every case asserts deadlock freedom, so a
// reduction that changed the verdict would fail the benchmark rather
// than report a fast wrong answer.
func BenchmarkExplorePOR(b *testing.B) {
	f, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
	if err != nil {
		b.Fatal(err)
	}
	f.Freeze()
	headline := func() *mcheck.System {
		sys, _ := core.BuildSystem(f, []int{1, 1})
		sys.SetPrograms(deadlockDriver(2, 2))
		return sys
	}
	sym2x2 := func() *mcheck.System {
		sys, _ := core.BuildSystem(f, []int{2, 2})
		sys.SetPrograms(symmetricDriver(4, 1))
		return sys
	}
	cases := []struct {
		name  string
		build func() *mcheck.System
		opts  mcheck.Options
	}{
		{"vii-c/por=off", headline,
			mcheck.Options{Evictions: true, HashCompaction: true, Workers: 1, POR: mcheck.POROff}},
		{"vii-c/por=on", headline,
			mcheck.Options{Evictions: true, HashCompaction: true, Workers: 1}},
		{"vii-c/por=on+spill", headline,
			mcheck.Options{Evictions: true, HashCompaction: true, Workers: 1, SpillDir: "auto"}},
		{"fused-2x2-sym/por=off", sym2x2,
			mcheck.Options{HashCompaction: true, Symmetry: true, Workers: 1, POR: mcheck.POROff}},
		{"fused-2x2-sym/por=on", sym2x2,
			mcheck.Options{HashCompaction: true, Symmetry: true, Workers: 1}},
	}
	var rec benchRecorder
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res *mcheck.Result
			for i := 0; i < b.N; i++ {
				opts := tc.opts
				if opts.SpillDir == "auto" {
					opts.SpillDir = b.TempDir()
				}
				start := time.Now()
				res = mcheck.Explore(tc.build(), opts)
				if res.Deadlocks > 0 || res.Truncated {
					b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
				}
				rec.record(tc.name, time.Since(start), res.States,
					fmt.Sprintf("%d ample-reduced states", res.PORReduced))
			}
			b.ReportMetric(float64(res.States), "states")
			b.ReportMetric(float64(res.PORReduced), "ample-states")
		})
	}
	emitBench(b, "BENCH_POR_OUT", benchReport{
		Schema:    "heterogen-bench-por/v2",
		Benchmark: "BenchmarkExplorePOR",
		Description: "ample-set partial order reduction on the §VII-C reachability search, POR off vs on, stacked on spilling and symmetry; every case asserts deadlock freedom; " +
			"BENCH_POR_OUT=BENCH_POR.json go test -bench BenchmarkExplorePOR -benchtime 1x (make bench-por)",
		Runner: benchmeta.Collect(singleCoreNote),
		Cases:  rec.rows,
	})
}

// BenchmarkSmoke is the `make bench-smoke` target: a MaxStates-capped
// §VII-C search plus the 2-thread litmus shapes on the headline pair — a
// minutes-scale end-to-end health check of the checker and suite
// plumbing, not a measurement (numbers in BENCH_*.json come from the full
// bench targets).
func BenchmarkSmoke(b *testing.B) {
	b.Run("deadlock-capped", func(b *testing.B) {
		f, err := core.Fuse(core.Options{},
			protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sys, _ := core.BuildSystem(f, []int{1, 1})
			sys.SetPrograms(deadlockDriver(2, 2))
			res := mcheck.Explore(sys, mcheck.Options{
				Evictions: true, HashCompaction: true, MaxStates: 150000})
			if res.Deadlocks > 0 {
				b.Fatalf("deadlocks=%d within the %d-state cap", res.Deadlocks, res.MaxStates)
			}
		}
	})
	b.Run("litmus-2thread", func(b *testing.B) {
		pairs := [][]*spec.Protocol{{
			protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO)}}
		for i := 0; i < b.N; i++ {
			rep, err := litmus.RunSuite(pairs, litmus.Options{MaxThreads: 2})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Failed() > 0 {
				b.Fatalf("litmus failures:\n%s", rep)
			}
		}
	})
}

// BenchmarkLitmusSuiteParallel measures the suite worker pool on the
// 2-thread shapes over every Table II pair (the BenchmarkLitmusSuite
// workload routed through RunSuite).
func BenchmarkLitmusSuiteParallel(b *testing.B) {
	var pairs [][]*spec.Protocol
	for _, pair := range core.TableIIPairs() {
		pairs = append(pairs, []*spec.Protocol{
			protocols.MustByName(pair[0]), protocols.MustByName(pair[1])})
	}
	for _, w := range []int{1, runtime.NumCPU()} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var tests int
			for i := 0; i < b.N; i++ {
				rep, err := litmus.RunSuite(pairs, litmus.Options{MaxThreads: 2, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Failed() > 0 {
					b.Fatalf("litmus failures:\n%s", rep)
				}
				tests = len(rep.Results)
			}
			b.ReportMetric(float64(tests), "tests")
		})
	}
}

// BenchmarkFusion measures the synthesis step itself (analysis + fusion).
func BenchmarkFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.Fuse(core.Options{},
			protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchRow is one measured row of a BENCH_*.json report: wall-clock
// seconds and, for rows that run a search, the state count it visited.
type benchRow struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	States  int     `json:"states,omitempty"`
	Note    string  `json:"note,omitempty"`
}

// benchRecorder accumulates named rows across a benchmark's subtests,
// keeping only the latest measurement per name (later -benchtime
// iterations overwrite earlier ones).
type benchRecorder struct {
	rows []benchRow
}

func (r *benchRecorder) record(name string, d time.Duration, states int, note string) {
	row := benchRow{Name: name, Seconds: float64(d.Milliseconds()) / 1000,
		States: states, Note: note}
	for j := range r.rows {
		if r.rows[j].Name == name {
			r.rows[j] = row
			return
		}
	}
	r.rows = append(r.rows, row)
}

// benchReport is the shared envelope of the mcheck-search benchmark
// reports (BENCH_PARALLEL/SYMMETRY/POR/STORAGE.json): schema, the runner
// metadata every report embeds the same way (benchmeta), and the rows.
type benchReport struct {
	Schema      string           `json:"schema"`
	Benchmark   string           `json:"benchmark"`
	Description string           `json:"description"`
	Runner      benchmeta.Runner `json:"runner"`
	Cases       []benchRow       `json:"cases"`
}

// singleCoreNote is the caveat every search report carries on this runner.
const singleCoreNote = "single-core container: worker counts above 1 measure scheduling overhead, not parallel speedup; wall-clock varies a few percent run to run"

// emitBench writes a benchmark report when the BENCH_*_OUT environment
// variable names a file — the shared output convention of every bench-*
// make target (and of `make bench-all`).
func emitBench(b *testing.B, envVar string, rep any) {
	path := os.Getenv(envVar)
	if path == "" || b.Failed() {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("benchmark report written to %s", path)
}

// benchCompileReport is the BENCH_COMPILE.json v3 schema, written when the
// BENCH_COMPILE_OUT environment variable names a file (`make
// bench-compile`). v3 adds the runner metadata block and the memoized /
// non-memoized / warm-started extraction rows.
type benchCompileReport struct {
	Schema       string           `json:"schema"`
	Benchmark    string           `json:"benchmark"`
	Description  string           `json:"description"`
	Runner       benchmeta.Runner `json:"runner"`
	Cases        []benchRow       `json:"cases"`
	Amortization string           `json:"amortization"`
	Agreement    string           `json:"agreement"`
}

// BenchmarkCompile measures the compiled flat-table directory engine
// against the interpreted composite (BENCH_COMPILE.json, `make
// bench-compile`) on the §VII-C headline search: fused MESI & RCC-O, one
// cache per cluster, two addresses, evictions free, hash-compaction
// storage. The rows separate every phase of the compile-once/check-many
// lifecycle over the identical workload: the interpreted MergedDir;
// extraction alone; compile+check, which pays the extraction inside the
// measured interval; precompiled/check, the steady-state dispatch-only
// cost of an in-memory table; and the artifact path — serializing the
// table to its .hgcf binary form, cold-loading it back (PCC reparse,
// digest verification, derived-state rebuild), and a check through the
// cold-loaded table. State counts must agree across every searching row
// or the run aborts. With BENCH_COMPILE_OUT set, the measurements are
// written as BENCH_COMPILE.json v2 after the subtests finish.
func BenchmarkCompile(b *testing.B) {
	f, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
	if err != nil {
		b.Fatal(err)
	}
	f.Freeze()
	progs := deadlockDriver(2, 2)
	opts := mcheck.Options{Evictions: true, HashCompaction: true, Workers: 1}
	ccfg := core.CompileConfig{CachesPerCluster: []int{1, 1}, Programs: progs,
		Evictions: true, MaxStates: 8 << 20, Workers: 1}
	var rec benchRecorder
	record := rec.record
	check := func(b *testing.B, res *mcheck.Result, want int) int {
		if res.Deadlocks > 0 || res.Truncated {
			b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
		}
		if want != 0 && res.States != want {
			b.Fatalf("engines disagree: %d states, want %d", res.States, want)
		}
		b.ReportMetric(float64(res.States), "states")
		return res.States
	}
	var interpStates int
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, _ := core.BuildSystem(f, []int{1, 1})
			sys.SetPrograms(progs)
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			res := mcheck.Explore(sys, opts)
			record("interpreted", time.Since(start), res.States,
				"interpreted composite MergedDir: per-cluster dispatch, proxy clones, bridge phases")
			interpStates = check(b, res, interpStates)
		}
	})
	var cf *core.CompiledFusion
	compile := func(b *testing.B) *core.CompiledFusion {
		c, err := core.Compile(f, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			cf = compile(b)
			st := cf.Stats()
			record("extract", time.Since(start), st.ExtractStates,
				fmt.Sprintf("memoized table extraction (the default): exhaustive POR-off search of the compiled configuration with each distinct (state, message) pair interpreted exactly once — %d interpreted, %d replayed from the growing table — plus dense-table finalization",
					st.Interpreted, st.MemoHits))
			b.ReportMetric(float64(st.ExtractStates), "states")
			b.ReportMetric(float64(st.MemoHits), "memo-hits")
		}
	})
	b.Run("extract/nomemo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nmCfg := ccfg
			nmCfg.NoMemo = true
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			nm, err := core.Compile(f, nmCfg)
			if err != nil {
				b.Fatal(err)
			}
			record("extract/nomemo", time.Since(start), nm.Stats().ExtractStates,
				"non-memoized baseline: every delivery re-runs the interpreted MergedDir (proxy clones, bridge phases) — the pre-memoization extraction cost, kept as the injectivity cross-check")
			if cf == nil {
				cf = nm
			} else if nm.Digest() != cf.Digest() {
				b.Fatalf("non-memoized digest %s != memoized digest %s — memoization changed the extracted table",
					nm.Digest(), cf.Digest())
			}
		}
	})
	b.Run("extract/warm", func(b *testing.B) {
		// The seed: the same pair and caches compiled for the eviction-free
		// quick config. Its digest differs (so the artifact cache misses)
		// but its warm identity matches, which is exactly the cross-config
		// recompile the warm scan turns into an incremental top-up.
		quickCfg := ccfg
		quickCfg.Evictions = false
		quick, err := core.Compile(f, quickCfg)
		if err != nil {
			b.Fatal(err)
		}
		seed, err := core.LoadWarmSeed(quick.MarshalArtifact(), f, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wCfg := ccfg
			wCfg.WarmSeed = seed
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			warm, err := core.Compile(f, wCfg)
			if err != nil {
				b.Fatal(err)
			}
			st := warm.Stats()
			record("extract/warm", time.Since(start), st.ExtractStates,
				fmt.Sprintf("warm-started extraction: seeded from the eviction-free quick table of the same pair (%d seed states), replaying %d deliveries from the seed before interpreting the %d pairs only the full config reaches",
					st.WarmStates, st.WarmHits, st.Interpreted))
			if cf != nil && warm.Digest() != cf.Digest() {
				b.Fatalf("warm-started digest %s != cold digest %s — warm seeding changed the extracted table",
					warm.Digest(), cf.Digest())
			}
		}
	})
	b.Run("compile+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			c := compile(b)
			res := mcheck.Explore(c.System(), opts)
			record("compile+check", time.Since(start), res.States,
				"extraction and the §VII-C search in one measured interval: the cold path of a -compiled run without a cache")
			check(b, res, interpStates)
		}
	})
	b.Run("precompiled/check", func(b *testing.B) {
		if cf == nil {
			cf = compile(b)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			res := mcheck.Explore(cf.System(), opts)
			record("precompiled/check", time.Since(start), res.States,
				"dispatch-only: the steady-state cost of checking an already-compiled in-memory table (binary-searched dense entry spans)")
			check(b, res, interpStates)
		}
	})
	artPath := filepath.Join(b.TempDir(), "vii-c"+core.ArtifactExt)
	b.Run("artifact/write", func(b *testing.B) {
		if cf == nil {
			cf = compile(b)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			if err := cf.WriteArtifact(artPath); err != nil {
				b.Fatal(err)
			}
			record("artifact/write", time.Since(start), 0,
				fmt.Sprintf("serialize the dense table to its versioned .hgcf binary form (digest %.12s…)", cf.Digest()))
		}
	})
	b.Run("artifact/coldload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			lcf, err := core.LoadArtifactFile(artPath)
			if err != nil {
				b.Fatal(err)
			}
			record("artifact/coldload", time.Since(start), 0,
				"one-read cold load of the serialized table: PCC reparse, re-fusion, digest verification, derived-state rebuild — replaces the extraction entirely")
			b.ReportMetric(float64(lcf.DirStates()), "dirstates")
		}
	})
	b.Run("coldload+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.GC() // settle preceding sub-benchmarks' garbage out of the timed window
			start := time.Now()
			lcf, err := core.LoadArtifactFile(artPath)
			if err != nil {
				b.Fatal(err)
			}
			res := mcheck.Explore(lcf.System(), opts)
			record("coldload+check", time.Since(start), res.States,
				"the amortized cold path with a warm cache: load the artifact from disk and run the §VII-C search through it")
			check(b, res, interpStates)
		}
	})
	emitBench(b, "BENCH_COMPILE_OUT", benchCompileReport{
		Schema:    "heterogen-bench-compile/v3",
		Benchmark: "BenchmarkCompile",
		Description: "Compiled flat-table directory engine vs the interpreted composite on the §VII-C headline search: fused MESI & RCC-O, 1 cache per cluster, 2 addresses, evictions at any time, hash-compaction storage, POR on; " +
			"BENCH_COMPILE_OUT=BENCH_COMPILE.json go test -bench 'BenchmarkCompile' -benchtime 1x (make bench-compile)",
		Runner: benchmeta.Collect("single-core container, Workers:1 throughout, so rows measure the engines themselves; wall-clock varies a few percent run to run"),
		Cases:  rec.rows,
		Amortization: "compile once, check many: a single extraction replaces the MergedDir interpreter with a binary search over dense per-state entry spans, and the .hgcf artifact makes the extraction itself a one-time cost — " +
			"a cold load from disk is under a second, so every search after the first pays only the dispatch-only row; " +
			"memoized extraction (extract vs extract/nomemo) cuts even the one-time cost, and a warm-compatible cached sibling (extract/warm) shrinks it further",
		Agreement: fmt.Sprintf("every searching row visits the identical %d states and every extracting row produces the identical artifact digest (the benchmark aborts on any disagreement); internal/core/compile_test.go and memo_test.go pin compiled-vs-interpreted-vs-loaded equality and workers x memoization x warm-start byte-identity", interpStates),
	})
}

// BenchmarkStorage measures the memory-bounded state-storage engine
// (BENCH_STORAGE.json, `make bench-storage`). The mode cases run the
// §VII-C headline search (fused MESI & RCC-O, one cache per cluster, two
// addresses, evictions free, ~1.1M states) under each visited-set mode —
// exact, hash-compacted fingerprint table, bitstate filter, and hash
// compaction with the disk-spilling frontier — reporting bytes/state and
// table size alongside wall time. The vii-c-2x2 case is the previously
// infeasible configuration: two caches per cluster free-running to a 10M-
// state bound with the visited table pinned at a fixed budget and the
// frontier spilling to disk.
func BenchmarkStorage(b *testing.B) {
	f, err := core.Fuse(core.Options{},
		protocols.MustByName(protocols.NameMESI), protocols.MustByName(protocols.NameRCCO))
	if err != nil {
		b.Fatal(err)
	}
	f.Freeze()
	build := func(per int) *mcheck.System {
		sys, _ := core.BuildSystem(f, []int{per, per})
		sys.SetPrograms(deadlockDriver(2*per, 2))
		return sys
	}
	report := func(b *testing.B, res *mcheck.Result) {
		b.ReportMetric(float64(res.States), "states")
		b.ReportMetric(res.BytesPerState, "bytes/state")
		b.ReportMetric(float64(res.TableBytes)/(1<<20), "table_MB")
		if res.SpilledBytes > 0 {
			b.ReportMetric(float64(res.SpilledBytes)/(1<<20), "spilled_MB")
		}
	}
	modes := []struct {
		name string
		opts mcheck.Options
	}{
		{"exact", mcheck.Options{}},
		{"hash", mcheck.Options{HashCompaction: true}},
		{"bitstate", mcheck.Options{Bitstate: true}},
		{"hash+spill", mcheck.Options{HashCompaction: true, SpillDir: "auto"}},
	}
	var rec benchRecorder
	for _, tc := range modes {
		tc := tc
		b.Run("mode="+tc.name, func(b *testing.B) {
			var res *mcheck.Result
			for i := 0; i < b.N; i++ {
				opts := tc.opts
				opts.Evictions = true
				opts.Workers = 1
				if opts.SpillDir == "auto" {
					opts.SpillDir = b.TempDir()
				}
				start := time.Now()
				res = mcheck.Explore(build(1), opts)
				if res.Deadlocks > 0 || res.Truncated {
					b.Fatalf("deadlocks=%d truncated=%t", res.Deadlocks, res.Truncated)
				}
				rec.record("mode="+tc.name, time.Since(start), res.States,
					fmt.Sprintf("%.1f bytes/state, %d table bytes", res.BytesPerState, res.TableBytes))
			}
			report(b, res)
		})
	}

	// The feasibility run: 2 caches per cluster, visited table capped at
	// 256 MiB (the 10M fingerprints occupy half of a 128 MiB generation),
	// frontier on disk. Infeasible under exact storage on a 15 GB machine:
	// ≥10M states × ~300 bytes of encoding+map+frontier clones.
	b.Run("vii-c-2x2", func(b *testing.B) {
		var res *mcheck.Result
		for i := 0; i < b.N; i++ {
			start := time.Now()
			res = mcheck.Explore(build(2), mcheck.Options{
				Evictions: true, Workers: 1,
				HashCompaction: true, MemBudget: 256 << 20,
				SpillDir: b.TempDir(), MaxStates: 10 << 20,
			})
			if res.Deadlocks > 0 {
				b.Fatalf("deadlocks=%d", res.Deadlocks)
			}
			// Closure or the 10M-visited-state bound are both success;
			// running out of the fixed memory budget is the failure this
			// engine exists to prevent. (Result.States counts expanded
			// states, which lag the visited set by the frontier width.)
			if res.BudgetFull {
				b.Fatalf("memory budget exhausted at %d states", res.States)
			}
			rec.record("vii-c-2x2", time.Since(start), res.States,
				fmt.Sprintf("fixed 256 MiB visited budget, frontier on disk (%d states / %d MB spilled)",
					res.SpilledStates, res.SpilledBytes>>20))
		}
		report(b, res)
	})
	emitBench(b, "BENCH_STORAGE_OUT", benchReport{
		Schema:    "heterogen-bench-storage/v2",
		Benchmark: "BenchmarkStorage",
		Description: "memory-bounded state storage on the §VII-C headline search under each visited-set mode, plus the 2-caches-per-cluster free run to the 10M-state bound in fixed memory; " +
			"BENCH_STORAGE_OUT=BENCH_STORAGE.json go test -bench BenchmarkStorage -benchtime 1x (make bench-storage)",
		Runner: benchmeta.Collect(singleCoreNote),
		Cases:  rec.rows,
	})
}
